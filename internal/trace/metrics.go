package trace

import (
	"fmt"
	"io"
	"sort"

	"kdp/internal/sim"
)

// Metrics aggregates the event stream into named counters that can be
// snapshotted at any virtual time. Every Tracer owns one and updates it
// on each Emit, so counters are exact functions of the event stream —
// the property the trace Checker verifies.
//
// Counter names are canonical and documented in the "counters
// glossary" appendix of EXPERIMENTS.md; EventCount indexes by Kind.
type Metrics struct {
	EventCount [kindMax]int64
	First      sim.Time // timestamp of the first event observed
	Last       sim.Time // timestamp of the most recent event

	// CPU time by category, in virtual nanoseconds (sums of Arg1 of
	// the corresponding KindCPU* events).
	CPUUser   sim.Duration
	CPUSys    sim.Duration
	CPUIntr   sim.Duration
	CPUIdle   sim.Duration
	CPUSwitch sim.Duration

	perProc  map[int32]*ProcCPU
	syscalls map[string]int64
	disks    map[string]*DiskMetrics

	// Buffer cache.
	BufHits    int64
	BufMisses  int64
	BufFlushed int64 // dirty buffers pushed by flush passes (sum of Arg1)

	// Readahead: asynchronous block fetches issued ahead of the
	// reader, how many were later consumed by a cache lookup (hits),
	// and how many were evicted or invalidated unreferenced (waste).
	BufRaIssued int64
	BufRaHits   int64
	BufRaWaste  int64

	// Network.
	NetTxBytes int64
	NetRxBytes int64

	// Splice engine. The in-flight gauges track the engine's pending
	// read/write block counts (Arg2 of the read/write events); peaks
	// are maxima over the run, comparable against the watermarks.
	SpliceBytes          int64
	SpliceInflightReads  int64
	SpliceInflightWrites int64
	SplicePeakReads      int64
	SplicePeakWrites     int64

	// Stream transport. Retransmitted and cumulatively acknowledged
	// bytes (Arg1 deltas folded per event), plus the peak consecutive
	// retry count seen on any one segment.
	StreamRetxPeakTries int64

	// Readiness multiplexing: descriptors scanned and reported ready
	// across every poll return (Arg1/Arg2 of KindKernelPoll).
	PollScannedFds int64
	PollReadyFds   int64

	// Virtual memory: page faults taken, pages filled from backing
	// files, dirty mapped pages written back, and copy-on-write breaks
	// (with the bytes those copies moved).
	VMFaults   int64
	VMPageins  int64
	VMPageouts int64
	VMCows     int64
	VMCowBytes int64

	// Syscall aggregation: operations carried inside batched
	// submissions and the kernel crossings those submissions saved
	// versus one syscall per op (Arg1/Arg2 of KindKernelBatch).
	BatchOps            int64
	BatchCrossingsSaved int64
}

// ProcCPU is per-process CPU accounting derived from the stream.
type ProcCPU struct {
	User sim.Duration
	Sys  sim.Duration
}

// DiskMetrics is per-device accounting derived from the stream.
type DiskMetrics struct {
	Reads        int64
	Writes       int64
	Errors       int64
	ReadBytes    int64
	WriteBytes   int64
	Busy         sim.Duration // sum of service times (KindDiskStart Arg2)
	QueueSamples int64        // one per KindDiskQueue event
	QueueSum     int64        // sum of queue lengths at queue time
	QueuePeak    int64

	// Write clustering: contiguous dirty runs issued back to back by
	// flush passes (KindDiskCluster), and the blocks they covered.
	ClusterRuns   int64
	ClusterBlocks int64 // sum of run lengths (the disk.cluster_len counter)
}

func (m *Metrics) reset() {
	*m = Metrics{
		perProc:  make(map[int32]*ProcCPU),
		syscalls: make(map[string]int64),
		disks:    make(map[string]*DiskMetrics),
	}
}

func (m *Metrics) proc(pid int32) *ProcCPU {
	pc := m.perProc[pid]
	if pc == nil {
		pc = &ProcCPU{}
		m.perProc[pid] = pc
	}
	return pc
}

func (m *Metrics) disk(name string) *DiskMetrics {
	dm := m.disks[name]
	if dm == nil {
		dm = &DiskMetrics{}
		m.disks[name] = dm
	}
	return dm
}

// observe folds one event into the counters.
func (m *Metrics) observe(ev Event) {
	if ev.Kind < kindMax {
		m.EventCount[ev.Kind]++
	}
	if m.eventsTotal() == 1 {
		m.First = ev.T
	}
	m.Last = ev.T

	switch ev.Kind {
	case KindCPUUser:
		m.CPUUser += sim.Duration(ev.Arg1)
		m.proc(ev.Pid).User += sim.Duration(ev.Arg1)
	case KindCPUSys:
		m.CPUSys += sim.Duration(ev.Arg1)
		m.proc(ev.Pid).Sys += sim.Duration(ev.Arg1)
	case KindCPUIntr:
		m.CPUIntr += sim.Duration(ev.Arg1)
	case KindCPUIdle:
		m.CPUIdle += sim.Duration(ev.Arg1)
	case KindCPUSwitch:
		m.CPUSwitch += sim.Duration(ev.Arg1)
	case KindSyscallEnter:
		m.syscalls[ev.Name]++
	case KindBufHit:
		m.BufHits++
		if ev.Arg2 == 1 {
			m.BufRaHits++
		}
	case KindBufMiss:
		m.BufMisses++
	case KindBufFlush:
		m.BufFlushed += ev.Arg1
	case KindBufReadahead:
		if ev.Arg2 < 0 {
			m.BufRaWaste++
		} else {
			m.BufRaIssued++
		}
	case KindDiskCluster:
		dm := m.disk(ev.Name)
		dm.ClusterRuns++
		dm.ClusterBlocks += ev.Arg2
	case KindDiskQueue:
		dm := m.disk(ev.Name)
		dm.QueueSamples++
		dm.QueueSum += ev.Arg2
		if ev.Arg2 > dm.QueuePeak {
			dm.QueuePeak = ev.Arg2
		}
	case KindDiskStart:
		m.disk(ev.Name).Busy += sim.Duration(ev.Arg2)
	case KindDiskRead:
		dm := m.disk(ev.Name)
		dm.Reads++
		dm.ReadBytes += ev.Arg2
	case KindDiskWrite:
		dm := m.disk(ev.Name)
		dm.Writes++
		dm.WriteBytes += ev.Arg2
	case KindDiskError:
		m.disk(ev.Name).Errors++
	case KindNetTx:
		m.NetTxBytes += ev.Arg1
	case KindNetRx:
		m.NetRxBytes += ev.Arg1
	case KindSpliceRead, KindSpliceReadDone:
		m.SpliceInflightReads = ev.Arg2
		if ev.Arg2 > m.SplicePeakReads {
			m.SplicePeakReads = ev.Arg2
		}
	case KindSpliceWrite:
		m.SpliceInflightWrites = ev.Arg2
		if ev.Arg2 > m.SplicePeakWrites {
			m.SplicePeakWrites = ev.Arg2
		}
	case KindSpliceWriteDone:
		m.SpliceInflightWrites = ev.Arg2
	case KindSpliceDone:
		m.SpliceBytes += ev.Arg1
	case KindStreamRetx:
		if ev.Arg2 > m.StreamRetxPeakTries {
			m.StreamRetxPeakTries = ev.Arg2
		}
	case KindKernelPoll:
		m.PollScannedFds += ev.Arg1
		m.PollReadyFds += ev.Arg2
	case KindVMFault:
		m.VMFaults++
	case KindVMPagein:
		m.VMPageins++
	case KindVMPageout:
		m.VMPageouts++
	case KindVMCOW:
		m.VMCows++
		m.VMCowBytes += ev.Arg2
	case KindKernelBatch:
		m.BatchOps += ev.Arg1
		m.BatchCrossingsSaved += ev.Arg2
	}
}

func (m *Metrics) eventsTotal() int64 {
	var n int64
	for _, c := range m.EventCount {
		n += c
	}
	return n
}

// Events returns the total number of events observed.
func (m *Metrics) Events() int64 { return m.eventsTotal() }

// ProcCPUSnapshot returns per-process CPU accounting, sorted by pid.
func (m *Metrics) ProcCPUSnapshot() []struct {
	Pid int32
	ProcCPU
} {
	pids := make([]int32, 0, len(m.perProc))
	for pid := range m.perProc {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	out := make([]struct {
		Pid int32
		ProcCPU
	}, 0, len(pids))
	for _, pid := range pids {
		out = append(out, struct {
			Pid int32
			ProcCPU
		}{pid, *m.perProc[pid]})
	}
	return out
}

// ClusterLen returns the total number of blocks covered by clustered
// dirty runs across every device (the disk.cluster_len counter).
func (m *Metrics) ClusterLen() int64 {
	var n int64
	for _, dm := range m.disks {
		n += dm.ClusterBlocks
	}
	return n
}

// CacheHitRatio returns hits/(hits+misses), or 0 with no lookups.
func (m *Metrics) CacheHitRatio() float64 {
	total := m.BufHits + m.BufMisses
	if total == 0 {
		return 0
	}
	return float64(m.BufHits) / float64(total)
}

// Counter is one named counter value in a snapshot.
type Counter struct {
	Name  string
	Value int64
}

// Snapshot returns every counter under its canonical name, sorted by
// name — a deterministic flattening of the aggregator, suitable for
// digesting, diffing, and the counters glossary in EXPERIMENTS.md.
// Durations are in virtual nanoseconds.
func (m *Metrics) Snapshot() []Counter {
	var out []Counter
	add := func(name string, v int64) { out = append(out, Counter{name, v}) }

	for k := Kind(1); k < kindMax; k++ {
		if m.EventCount[k] != 0 {
			add("events."+k.String(), m.EventCount[k])
		}
	}
	add("cpu.user", int64(m.CPUUser))
	add("cpu.sys", int64(m.CPUSys))
	add("cpu.intr", int64(m.CPUIntr))
	add("cpu.idle", int64(m.CPUIdle))
	add("cpu.switch", int64(m.CPUSwitch))
	for _, pc := range m.ProcCPUSnapshot() {
		add(fmt.Sprintf("cpu.user.pid%d", pc.Pid), int64(pc.User))
		add(fmt.Sprintf("cpu.sys.pid%d", pc.Pid), int64(pc.Sys))
	}
	names := make([]string, 0, len(m.syscalls))
	for name := range m.syscalls {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		add("syscall."+name, m.syscalls[name])
	}
	add("buf.hits", m.BufHits)
	add("buf.misses", m.BufMisses)
	add("buf.flushed", m.BufFlushed)
	add("buf.ra_issued", m.BufRaIssued)
	add("buf.ra_hits", m.BufRaHits)
	add("buf.ra_waste", m.BufRaWaste)
	devs := make([]string, 0, len(m.disks))
	for name := range m.disks {
		devs = append(devs, name)
	}
	sort.Strings(devs)
	for _, name := range devs {
		dm := m.disks[name]
		add("disk."+name+".reads", dm.Reads)
		add("disk."+name+".writes", dm.Writes)
		add("disk."+name+".errors", dm.Errors)
		add("disk."+name+".read_bytes", dm.ReadBytes)
		add("disk."+name+".write_bytes", dm.WriteBytes)
		add("disk."+name+".busy", int64(dm.Busy))
		add("disk."+name+".queue_samples", dm.QueueSamples)
		add("disk."+name+".queue_sum", dm.QueueSum)
		add("disk."+name+".queue_peak", dm.QueuePeak)
		add("disk."+name+".cluster_runs", dm.ClusterRuns)
		add("disk."+name+".cluster_len", dm.ClusterBlocks)
	}
	add("disk.cluster_len", m.ClusterLen())
	add("net.tx_bytes", m.NetTxBytes)
	add("net.rx_bytes", m.NetRxBytes)
	add("splice.bytes", m.SpliceBytes)
	add("splice.inflight_reads", m.SpliceInflightReads)
	add("splice.inflight_writes", m.SpliceInflightWrites)
	add("splice.peak_reads", m.SplicePeakReads)
	add("splice.peak_writes", m.SplicePeakWrites)
	add("stream.retx_peak_tries", m.StreamRetxPeakTries)
	add("poll.scanned_fds", m.PollScannedFds)
	add("poll.ready_fds", m.PollReadyFds)
	add("vm.faults", m.VMFaults)
	add("vm.pageins", m.VMPageins)
	add("vm.pageouts", m.VMPageouts)
	add("vm.cows", m.VMCows)
	add("vm.cow_bytes", m.VMCowBytes)
	add("sys.batch_ops", m.BatchOps)
	add("sys.batch_crossings_saved", m.BatchCrossingsSaved)

	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Format writes a human-readable summary of the aggregated counters —
// the kdptrace -stats renderer.
func (m *Metrics) Format(w io.Writer) {
	span := m.Last.Sub(m.First)
	fmt.Fprintf(w, "events: %d over %v (t=%v..%v)\n", m.eventsTotal(), span, m.First, m.Last)

	fmt.Fprintf(w, "cpu: user=%v sys=%v intr=%v idle=%v switch=%v\n",
		m.CPUUser, m.CPUSys, m.CPUIntr, m.CPUIdle, m.CPUSwitch)
	for _, pc := range m.ProcCPUSnapshot() {
		fmt.Fprintf(w, "  pid%-4d user=%v sys=%v\n", pc.Pid, pc.User, pc.Sys)
	}

	if n := m.EventCount[KindSyscallEnter]; n > 0 {
		fmt.Fprintf(w, "syscalls: %d", n)
		names := make([]string, 0, len(m.syscalls))
		for name := range m.syscalls {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, " %s=%d", name, m.syscalls[name])
		}
		fmt.Fprintln(w)
	}

	if m.BufHits+m.BufMisses > 0 {
		fmt.Fprintf(w, "cache: hits=%d misses=%d ratio=%.1f%% flushed=%d\n",
			m.BufHits, m.BufMisses, 100*m.CacheHitRatio(), m.BufFlushed)
	}
	if m.BufRaIssued+m.BufRaWaste > 0 {
		fmt.Fprintf(w, "readahead: issued=%d hits=%d waste=%d\n",
			m.BufRaIssued, m.BufRaHits, m.BufRaWaste)
	}

	devs := make([]string, 0, len(m.disks))
	for name := range m.disks {
		devs = append(devs, name)
	}
	sort.Strings(devs)
	for _, name := range devs {
		dm := m.disks[name]
		util := 0.0
		if span > 0 {
			util = 100 * float64(dm.Busy) / float64(span)
		}
		mean := 0.0
		if dm.QueueSamples > 0 {
			mean = float64(dm.QueueSum) / float64(dm.QueueSamples)
		}
		fmt.Fprintf(w, "disk %s: reads=%d writes=%d errors=%d busy=%v util=%.1f%% queue mean=%.2f peak=%d\n",
			name, dm.Reads, dm.Writes, dm.Errors, dm.Busy, util, mean, dm.QueuePeak)
		if dm.ClusterRuns > 0 {
			fmt.Fprintf(w, "  clusters: runs=%d blocks=%d mean len=%.2f\n",
				dm.ClusterRuns, dm.ClusterBlocks,
				float64(dm.ClusterBlocks)/float64(dm.ClusterRuns))
		}
	}

	if m.EventCount[KindNetTx]+m.EventCount[KindNetRx]+m.EventCount[KindNetDrop] > 0 {
		fmt.Fprintf(w, "net: tx=%d (%dB) rx=%d (%dB) drops=%d\n",
			m.EventCount[KindNetTx], m.NetTxBytes,
			m.EventCount[KindNetRx], m.NetRxBytes,
			m.EventCount[KindNetDrop])
	}

	if m.EventCount[KindSpliceStart] > 0 {
		fmt.Fprintf(w, "splice: transfers=%d bytes=%d reads=%d writes=%d stalls=%d peak reads=%d writes=%d\n",
			m.EventCount[KindSpliceStart], m.SpliceBytes,
			m.EventCount[KindSpliceRead], m.EventCount[KindSpliceWrite],
			m.EventCount[KindSpliceStall], m.SplicePeakReads, m.SplicePeakWrites)
	}

	if m.EventCount[KindStreamAck]+m.EventCount[KindStreamRetx]+m.EventCount[KindStreamStall] > 0 {
		fmt.Fprintf(w, "stream: acks=%d retransmits=%d (peak tries=%d) stalls=%d\n",
			m.EventCount[KindStreamAck], m.EventCount[KindStreamRetx],
			m.StreamRetxPeakTries, m.EventCount[KindStreamStall])
	}
	if n := m.EventCount[KindServerAccept]; n > 0 {
		fmt.Fprintf(w, "server: accepts=%d ready=%d\n", n, m.EventCount[KindServerReady])
	}

	if n := m.EventCount[KindKernelPoll]; n > 0 {
		fmt.Fprintf(w, "poll: returns=%d scanned=%d ready=%d\n",
			n, m.PollScannedFds, m.PollReadyFds)
	}

	if n := m.EventCount[KindKernelBatch]; n > 0 {
		fmt.Fprintf(w, "batch: submits=%d ops=%d crossings_saved=%d\n",
			n, m.BatchOps, m.BatchCrossingsSaved)
	}

	if m.VMFaults+m.VMPageins+m.VMPageouts+m.VMCows > 0 {
		fmt.Fprintf(w, "vm: faults=%d pageins=%d pageouts=%d cows=%d cow_bytes=%d\n",
			m.VMFaults, m.VMPageins, m.VMPageouts, m.VMCows, m.VMCowBytes)
	}

	if n := m.EventCount[KindCalloutFire]; n > 0 {
		fmt.Fprintf(w, "callouts: %d fired\n", n)
	}
	if n := m.EventCount[KindSignalPost]; n > 0 {
		fmt.Fprintf(w, "signals: posted=%d delivered=%d\n", n, m.EventCount[KindSignalDeliver])
	}
}
