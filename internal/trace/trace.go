// Package trace is the simulator's structured tracing and metrics
// layer: a typed, allocation-light event stream emitted by every
// subsystem (scheduler, syscall layer, buffer cache, disks, network,
// splice engine, callout list, signals), with counter aggregation and a
// Chrome trace-event / Perfetto exporter on top.
//
// The design splits three concerns:
//
//   - Event is the wire unit: a fixed-shape struct (virtual timestamp,
//     kind, pid, two integer arguments, one interned string). Emitting
//     an event performs no formatting and no allocation beyond the
//     sink's own storage.
//   - Tracer fans each event into an always-on Metrics aggregator and
//     an optional Sink. Kernel code holds a *Tracer behind a nil check,
//     so with tracing off the per-event cost is a single pointer test.
//     Tracing never charges virtual time: enabling it cannot perturb
//     the simulation's timing or its deterministic event order.
//   - Sinks consume events: Collector retains them, Digester folds them
//     into an FNV-1a hash for determinism checks, Checker validates
//     stream invariants, and ExportChrome renders a collected stream as
//     viewer-loadable JSON.
//
// The full taxonomy, field semantics, and the Perfetto mapping are
// documented in docs/TRACING.md.
package trace

import (
	"fmt"

	"kdp/internal/sim"
)

// Kind identifies the type of a trace event. The numeric values are
// part of the digest-stable stream identity: append new kinds at the
// end rather than renumbering.
type Kind uint8

// Event kinds. Field conventions per kind are documented on the
// constant and in docs/TRACING.md.
const (
	KindNone Kind = iota

	// Scheduler events.
	KindSchedSwitch  // CPU given to Pid; Name = proc name
	KindSchedPreempt // Pid preempted; Arg1 = remaining CPU request (ns)
	KindSchedSleep   // Pid blocks; Arg1 = sleep priority
	KindSchedWakeup  // Pid made runnable; Arg1 = priority; Name = proc name
	KindProcExit     // Pid exited; Name = proc name

	// Syscall events. Matched pairs per Pid; Name = syscall name.
	KindSyscallEnter
	KindSyscallExit

	// CPU accounting events. Arg1 = duration (ns) charged to the
	// category; emitted as time is consumed, so summing Arg1 per kind
	// reproduces the kernel's CPU accounting exactly.
	KindCPUUser   // user-mode time charged to Pid
	KindCPUSys    // kernel-mode time charged to Pid
	KindCPUIntr   // interrupt-level stolen time
	KindCPUIdle   // idle time
	KindCPUSwitch // context-switch overhead; Pid = incoming proc

	// Buffer-cache events. Arg1 = block number; Name = device name.
	KindBufHit // Arg2 = 1 when the hit consumed a readahead buffer, else 0
	KindBufMiss
	KindBufFlush // periodic/forced dirty-buffer push; Arg1 = buffers queued

	// Disk events. Name = device name.
	KindDiskQueue // request queued; Arg1 = blkno, Arg2 = queue length after
	KindDiskStart // service begins; Arg1 = blkno, Arg2 = service time (ns)
	KindDiskRead  // read completion; Arg1 = blkno, Arg2 = bytes
	KindDiskWrite // write completion; Arg1 = blkno, Arg2 = bytes
	KindDiskError // completion with error; Arg1 = blkno

	// Network events. Arg1 = payload bytes, Arg2 = destination port.
	KindNetTx
	KindNetRx
	KindNetDrop

	// Splice engine events. Name = transfer mode ("file-file", ...).
	KindSpliceStart     // Pid = caller; Arg1 = requested bytes (-1 = to EOF)
	KindSpliceRead      // read issued; Arg1 = logical block, Arg2 = pending reads
	KindSpliceReadDone  // read completed; Arg1 = logical block, Arg2 = pending reads
	KindSpliceWrite     // write dispatched; Arg1 = logical block, Arg2 = pending writes
	KindSpliceWriteDone // write completed; Arg1 = bytes, Arg2 = pending writes
	KindSpliceStall     // flow-control backoff armed; Arg1 = pending reads, Arg2 = pending writes
	KindSpliceDone      // transfer finished; Arg1 = bytes moved, Arg2 = 0 ok / 1 error

	// Callout list. Arg1 = callouts still queued after this dispatch.
	KindCalloutFire

	// Signals. Arg1 = signal number; Name = signal name.
	KindSignalPost    // posted to Pid
	KindSignalDeliver // handler run in Pid's context

	// Filesystem events. Name = device name.
	KindFSSync // full-filesystem sync; Arg1 = dirty blocks pushed

	// Stream-transport events (internal/stream). Name = connection
	// label ("cli:5001->80#1").
	KindStreamRetx  // segment retransmitted; Arg1 = seq byte offset, Arg2 = consecutive retries
	KindStreamAck   // cumulative ACK advanced the send window; Arg1 = acked byte offset, Arg2 = advertised window
	KindStreamStall // sender blocked by a closed window; Arg1 = bytes waiting, Arg2 = bytes in flight

	// File-server events (internal/server). Name = server name.
	KindServerAccept // connection accepted; Pid = server pid, Arg1 = conn id, Arg2 = connections accepted so far

	// Crash/recovery events. Name = device name.
	KindFSCrash  // power cut: volatile state discarded; Arg1 = dirty buffers lost, Arg2 = queued requests dropped
	KindFSRepair // repairing fsck pass finished; Arg1 = problems found, Arg2 = repairs applied

	// Readiness multiplexing (internal/kernel poll + internal/server
	// event loop).
	KindKernelPoll  // poll returned; Pid = caller, Arg1 = fds scanned, Arg2 = fds ready
	KindServerReady // event loop dispatched a ready descriptor; Arg1 = fd, Arg2 = revents bits; Name = server name

	// Buffer-cache readahead and write clustering. Name = device name.
	KindBufReadahead // Arg1 = blkno; Arg2 = in-flight readaheads after issue (>= 1), or -1 when a never-referenced readahead buffer is retired (waste)
	KindDiskCluster  // contiguous dirty run issued back to back by a flush; Arg1 = starting blkno, Arg2 = run length in blocks (>= 2)

	// Virtual-memory subsystem (internal/vm). Name = backing device
	// name ("" for anonymous memory).
	KindVMFault   // page fault taken; Pid = faulter, Arg1 = mapped page index, Arg2 = 1 write / 0 read
	KindVMPagein  // fault filled from the backing file; Arg1 = page index, Arg2 = physical block
	KindVMPageout // dirty mapped page written back; Arg1 = page index, Arg2 = physical block
	KindVMCOW     // private store broke sharing; Pid = faulter, Arg1 = page index, Arg2 = bytes copied

	// Syscall aggregation (internal/kernel readv/writev/submit).
	KindKernelBatch // aggregated submission crossed the boundary once; Pid = caller, Arg1 = ops carried, Arg2 = crossings saved vs one-syscall-per-op

	// Fault-plan events (internal/kernel FaultPlan). Name = site ID.
	KindFaultArm  // a plan armed a site; Arg1 = k (occurrence to hit), Arg2 = every-n period (0 when unused)
	KindFaultFire // an armed fault fired; Arg1 = site argument (blkno, ordinal, pid), Arg2 = occurrence index that fired

	kindMax // count sentinel; keep last
)

// NumKinds is the number of defined event kinds.
const NumKinds = int(kindMax)

var kindNames = [kindMax]string{
	KindNone:            "none",
	KindSchedSwitch:     "sched.switch",
	KindSchedPreempt:    "sched.preempt",
	KindSchedSleep:      "sched.sleep",
	KindSchedWakeup:     "sched.wakeup",
	KindProcExit:        "proc.exit",
	KindSyscallEnter:    "syscall.enter",
	KindSyscallExit:     "syscall.exit",
	KindCPUUser:         "cpu.user",
	KindCPUSys:          "cpu.sys",
	KindCPUIntr:         "cpu.intr",
	KindCPUIdle:         "cpu.idle",
	KindCPUSwitch:       "cpu.switch",
	KindBufHit:          "buf.hit",
	KindBufMiss:         "buf.miss",
	KindBufFlush:        "buf.flush",
	KindDiskQueue:       "disk.queue",
	KindDiskStart:       "disk.start",
	KindDiskRead:        "disk.read",
	KindDiskWrite:       "disk.write",
	KindDiskError:       "disk.error",
	KindNetTx:           "net.tx",
	KindNetRx:           "net.rx",
	KindNetDrop:         "net.drop",
	KindSpliceStart:     "splice.start",
	KindSpliceRead:      "splice.read",
	KindSpliceReadDone:  "splice.read-done",
	KindSpliceWrite:     "splice.write",
	KindSpliceWriteDone: "splice.write-done",
	KindSpliceStall:     "splice.stall",
	KindSpliceDone:      "splice.done",
	KindCalloutFire:     "callout.fire",
	KindSignalPost:      "signal.post",
	KindSignalDeliver:   "signal.deliver",
	KindFSSync:          "fs.sync",
	KindStreamRetx:      "stream.retx",
	KindStreamAck:       "stream.ack",
	KindStreamStall:     "stream.stall",
	KindServerAccept:    "server.accept",
	KindFSCrash:         "fs.crash",
	KindFSRepair:        "fs.repair",
	KindKernelPoll:      "kernel.poll",
	KindServerReady:     "server.ready",
	KindBufReadahead:    "buf.readahead",
	KindDiskCluster:     "disk.cluster",
	KindVMFault:         "vm.fault",
	KindVMPagein:        "vm.pagein",
	KindVMPageout:       "vm.pageout",
	KindVMCOW:           "vm.cow",
	KindKernelBatch:     "kernel.batch",
	KindFaultArm:        "fault.arm",
	KindFaultFire:       "fault.fire",
}

// String returns the kind's canonical dotted name.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Valid reports whether k names a defined event kind.
func (k Kind) Valid() bool { return k > KindNone && k < kindMax }

// Event is one structured trace record. The shape is fixed so that
// emission does not allocate: two integer arguments whose meaning is
// kind-specific (see the Kind constants) and one string that is always
// a pre-existing interned name (proc, device, syscall, mode), never a
// formatted message.
type Event struct {
	T    sim.Time // virtual timestamp
	Kind Kind
	Pid  int32 // process id, or 0 for machine-level events
	Arg1 int64
	Arg2 int64
	Name string
}

// String renders the event as one human-readable line (without the
// timestamp, which renderers prefix in their own format).
func (ev Event) String() string {
	switch ev.Kind {
	case KindSchedSwitch:
		return fmt.Sprintf("switch to %s", ev.procRef())
	case KindSchedPreempt:
		return fmt.Sprintf("preempt pid%d (rem %v)", ev.Pid, sim.Duration(ev.Arg1))
	case KindSchedSleep:
		return fmt.Sprintf("sleep pid%d pri=%d", ev.Pid, ev.Arg1)
	case KindSchedWakeup:
		return fmt.Sprintf("wakeup %s pri=%d", ev.procRef(), ev.Arg1)
	case KindProcExit:
		return fmt.Sprintf("exit %s", ev.procRef())
	case KindSyscallEnter:
		return fmt.Sprintf("syscall %s enter pid%d", ev.Name, ev.Pid)
	case KindSyscallExit:
		return fmt.Sprintf("syscall %s exit pid%d", ev.Name, ev.Pid)
	case KindCPUUser, KindCPUSys, KindCPUIntr, KindCPUIdle, KindCPUSwitch:
		return fmt.Sprintf("%v %v", ev.Kind, sim.Duration(ev.Arg1))
	case KindBufHit, KindBufMiss:
		return fmt.Sprintf("%v %s blk %d", ev.Kind, ev.Name, ev.Arg1)
	case KindBufFlush:
		return fmt.Sprintf("buf.flush %d dirty", ev.Arg1)
	case KindDiskQueue:
		return fmt.Sprintf("disk.queue %s blk %d qlen=%d", ev.Name, ev.Arg1, ev.Arg2)
	case KindDiskStart:
		return fmt.Sprintf("disk.start %s blk %d svc=%v", ev.Name, ev.Arg1, sim.Duration(ev.Arg2))
	case KindDiskRead, KindDiskWrite:
		return fmt.Sprintf("%v %s blk %d %dB", ev.Kind, ev.Name, ev.Arg1, ev.Arg2)
	case KindDiskError:
		return fmt.Sprintf("disk.error %s blk %d", ev.Name, ev.Arg1)
	case KindNetTx, KindNetRx, KindNetDrop:
		return fmt.Sprintf("%v %dB port %d", ev.Kind, ev.Arg1, ev.Arg2)
	case KindSpliceStart:
		return fmt.Sprintf("splice.start %s pid%d bytes=%d", ev.Name, ev.Pid, ev.Arg1)
	case KindSpliceRead, KindSpliceReadDone:
		return fmt.Sprintf("%v blk %d pendingReads=%d", ev.Kind, ev.Arg1, ev.Arg2)
	case KindSpliceWrite:
		return fmt.Sprintf("splice.write blk %d pendingWrites=%d", ev.Arg1, ev.Arg2)
	case KindSpliceWriteDone:
		return fmt.Sprintf("splice.write-done %dB pendingWrites=%d", ev.Arg1, ev.Arg2)
	case KindSpliceStall:
		return fmt.Sprintf("splice.stall pendingReads=%d pendingWrites=%d", ev.Arg1, ev.Arg2)
	case KindSpliceDone:
		if ev.Arg2 != 0 {
			return fmt.Sprintf("splice.done %dB (error)", ev.Arg1)
		}
		return fmt.Sprintf("splice.done %dB", ev.Arg1)
	case KindCalloutFire:
		return fmt.Sprintf("callout.fire (%d queued)", ev.Arg1)
	case KindSignalPost:
		return fmt.Sprintf("post %s to pid%d", ev.Name, ev.Pid)
	case KindSignalDeliver:
		return fmt.Sprintf("deliver %s to pid%d", ev.Name, ev.Pid)
	case KindFSSync:
		return fmt.Sprintf("fs.sync %s %d blocks", ev.Name, ev.Arg1)
	case KindStreamRetx:
		return fmt.Sprintf("stream.retx %s seq=%d try=%d", ev.Name, ev.Arg1, ev.Arg2)
	case KindStreamAck:
		return fmt.Sprintf("stream.ack %s acked=%d wnd=%d", ev.Name, ev.Arg1, ev.Arg2)
	case KindStreamStall:
		return fmt.Sprintf("stream.stall %s waiting=%d inflight=%d", ev.Name, ev.Arg1, ev.Arg2)
	case KindServerAccept:
		return fmt.Sprintf("server.accept %s conn=%d total=%d", ev.Name, ev.Arg1, ev.Arg2)
	case KindFSCrash:
		return fmt.Sprintf("fs.crash %s lost=%d dropped=%d", ev.Name, ev.Arg1, ev.Arg2)
	case KindFSRepair:
		return fmt.Sprintf("fs.repair %s problems=%d repaired=%d", ev.Name, ev.Arg1, ev.Arg2)
	case KindKernelPoll:
		return fmt.Sprintf("kernel.poll pid%d nfds=%d ready=%d", ev.Pid, ev.Arg1, ev.Arg2)
	case KindServerReady:
		return fmt.Sprintf("server.ready %s fd=%d revents=%#x", ev.Name, ev.Arg1, ev.Arg2)
	case KindBufReadahead:
		if ev.Arg2 < 0 {
			return fmt.Sprintf("buf.readahead %s blk %d wasted", ev.Name, ev.Arg1)
		}
		return fmt.Sprintf("buf.readahead %s blk %d inflight=%d", ev.Name, ev.Arg1, ev.Arg2)
	case KindDiskCluster:
		return fmt.Sprintf("disk.cluster %s blk %d..%d len=%d", ev.Name, ev.Arg1, ev.Arg1+ev.Arg2-1, ev.Arg2)
	case KindVMFault:
		mode := "read"
		if ev.Arg2 != 0 {
			mode = "write"
		}
		return fmt.Sprintf("vm.fault pid%d page %d (%s)", ev.Pid, ev.Arg1, mode)
	case KindVMPagein:
		return fmt.Sprintf("vm.pagein %s page %d blk %d", ev.Name, ev.Arg1, ev.Arg2)
	case KindVMPageout:
		return fmt.Sprintf("vm.pageout %s page %d blk %d", ev.Name, ev.Arg1, ev.Arg2)
	case KindVMCOW:
		return fmt.Sprintf("vm.cow pid%d page %d %dB", ev.Pid, ev.Arg1, ev.Arg2)
	case KindKernelBatch:
		return fmt.Sprintf("kernel.batch pid%d ops=%d saved=%d", ev.Pid, ev.Arg1, ev.Arg2)
	case KindFaultArm:
		return fmt.Sprintf("fault.arm %s k=%d every=%d", ev.Name, ev.Arg1, ev.Arg2)
	case KindFaultFire:
		return fmt.Sprintf("fault.fire %s arg=%d occurrence=%d", ev.Name, ev.Arg1, ev.Arg2)
	default:
		return fmt.Sprintf("%v pid%d %d %d %s", ev.Kind, ev.Pid, ev.Arg1, ev.Arg2, ev.Name)
	}
}

func (ev Event) procRef() string {
	if ev.Name != "" {
		return fmt.Sprintf("%s(pid%d)", ev.Name, ev.Pid)
	}
	return fmt.Sprintf("pid%d", ev.Pid)
}

// Sink consumes emitted events. Emit runs synchronously on the
// simulation goroutine and must not charge virtual time.
type Sink interface {
	Emit(Event)
}

// Tracer fans events into an always-on Metrics aggregator and an
// optional sink. A nil *Tracer is valid and inert, so holders can emit
// through a single nil check.
type Tracer struct {
	sink    Sink
	metrics Metrics
}

// New returns a tracer forwarding to sink. A nil sink is allowed:
// metrics are still aggregated, events are not retained.
func New(sink Sink) *Tracer {
	t := &Tracer{sink: sink}
	t.metrics.reset()
	return t
}

// Emit records one event.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.metrics.observe(ev)
	if t.sink != nil {
		t.sink.Emit(ev)
	}
}

// Metrics returns the tracer's counter aggregator.
func (t *Tracer) Metrics() *Metrics {
	if t == nil {
		return nil
	}
	return &t.metrics
}

// Collector is a Sink that retains every event in order.
type Collector struct {
	Events []Event
}

// Emit appends the event.
func (c *Collector) Emit(ev Event) { c.Events = append(c.Events, ev) }

// Reset discards collected events (keeping capacity).
func (c *Collector) Reset() { c.Events = c.Events[:0] }

// Digester is a Sink folding every event into a running FNV-1a hash;
// two runs are event-for-event identical iff their sums match.
type Digester struct {
	h uint64
}

// NewDigester returns an initialized digester.
func NewDigester() *Digester { return &Digester{h: fnvOffset} }

// Emit folds one event into the digest.
func (d *Digester) Emit(ev Event) {
	h := d.h
	h = fnvInt(h, int64(ev.T))
	h = fnvInt(h, int64(ev.Kind))
	h = fnvInt(h, int64(ev.Pid))
	h = fnvInt(h, ev.Arg1)
	h = fnvInt(h, ev.Arg2)
	h = fnvString(h, ev.Name)
	d.h = h
}

// Sum returns the digest of everything emitted so far.
func (d *Digester) Sum() uint64 { return d.h }

// Digest hashes a slice of events (FNV-1a over all fields).
func Digest(events []Event) uint64 {
	d := NewDigester()
	for _, ev := range events {
		d.Emit(ev)
	}
	return d.Sum()
}

// Tee returns a sink duplicating every event to each of sinks (nils
// are skipped).
func Tee(sinks ...Sink) Sink {
	var out []Sink
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	return teeSink(out)
}

type teeSink []Sink

func (t teeSink) Emit(ev Event) {
	for _, s := range t {
		s.Emit(ev)
	}
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvInt(h uint64, v int64) uint64 {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		h ^= u & 0xff
		h *= fnvPrime
		u >>= 8
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	// Terminate so ("ab","c") and ("a","bc") differ across events.
	h ^= 0xff
	h *= fnvPrime
	return h
}
