package disk

import (
	"fmt"

	"kdp/internal/buf"
)

// This file implements the disk-side invariant checker used by the
// simcheck harness. Like the buffer cache's checker, the checks are
// structural — they inspect the request queue without doing I/O — so
// they are callable from any scheduling boundary.
//
// Invariant catalog (disk):
//
//	disk-queue-range     every queued request addresses a block on the
//	                     device with a legal transfer length
//	disk-queue-busy      every queued request is a busy, not-yet-done
//	                     buffer (biodone has not run for it)
//	disk-active          a drained device is inactive and an inactive
//	                     device has an empty queue; SyncCPU devices
//	                     never queue at all
//
// A violation is reported as an *InvariantError naming the invariant.

// InvariantError describes one violated disk invariant.
type InvariantError struct {
	Name   string // invariant identifier, e.g. "disk-queue-range"
	Detail string
}

func (e *InvariantError) Error() string {
	return "invariant " + e.Name + " violated: " + e.Detail
}

func violation(name, format string, args ...any) error {
	return &InvariantError{Name: name, Detail: fmt.Sprintf(format, args...)}
}

// CheckInvariants verifies the device's structural invariants,
// returning the first violation found (nil if consistent). It never
// sleeps and performs no I/O.
func (d *Disk) CheckInvariants() error {
	if d.p.SyncCPU && (len(d.queue) > 0 || d.active) {
		return violation("disk-active", "%s: SyncCPU device with queued or active requests", d.p.Name)
	}
	if !d.active && len(d.queue) > 0 {
		return violation("disk-active", "%s: %d queued requests on inactive device", d.p.Name, len(d.queue))
	}
	for _, b := range d.queue {
		if b == nil {
			return violation("disk-queue-busy", "%s: nil request in queue", d.p.Name)
		}
		if b.Blkno < 0 || b.Blkno >= d.p.Blocks || b.Bcount <= 0 || b.Bcount > d.p.BlockSize {
			return violation("disk-queue-range", "%s: queued %s out of range", d.p.Name, b)
		}
		if !b.HasFlags(buf.BBusy) || b.Flags&buf.BDone != 0 {
			return violation("disk-queue-busy", "%s: queued buffer not busy or already done: %s", d.p.Name, b)
		}
	}
	return nil
}
