package disk

import (
	"testing"

	"kdp/internal/kernel"
)

func TestInjectedReadFault(t *testing.T) {
	k, c, d := newRig(RZ58(256, 8192))
	d.InjectFault(7, true, false, -1)
	run(t, k, func(p *kernel.Proc) {
		ctx := p.Ctx()
		if _, err := c.Bread(ctx, d, 7); err != kernel.ErrIO {
			t.Errorf("bread on faulty block: %v, want ErrIO", err)
		}
		// Other blocks still work.
		b, err := c.Bread(ctx, d, 8)
		if err != nil {
			t.Errorf("bread clean block: %v", err)
			return
		}
		c.Brelse(ctx, b)
	})
	if d.Errors() != 1 {
		t.Fatalf("errors = %d", d.Errors())
	}
}

func TestInjectedWriteFaultOnSyncDevice(t *testing.T) {
	k, c, d := newRig(RAMDisk(256, 8192))
	d.InjectFault(3, false, true, -1)
	run(t, k, func(p *kernel.Proc) {
		ctx := p.Ctx()
		b := c.Getblk(ctx, d, 3)
		if err := c.Bwrite(ctx, b); err != kernel.ErrIO {
			t.Errorf("bwrite on faulty block: %v, want ErrIO", err)
		}
	})
}

func TestCountedFaultExpires(t *testing.T) {
	k, c, d := newRig(RAMDisk(256, 8192))
	d.InjectFault(5, true, false, 2)
	run(t, k, func(p *kernel.Proc) {
		ctx := p.Ctx()
		for i := 0; i < 2; i++ {
			if _, err := c.Bread(ctx, d, 5); err != kernel.ErrIO {
				t.Errorf("attempt %d: %v, want ErrIO", i, err)
			}
		}
		b, err := c.Bread(ctx, d, 5)
		if err != nil {
			t.Errorf("after fault expiry: %v", err)
			return
		}
		c.Brelse(ctx, b)
	})
	if d.Errors() != 2 {
		t.Fatalf("errors = %d, want 2", d.Errors())
	}
}

func TestClearFaults(t *testing.T) {
	k, c, d := newRig(RAMDisk(256, 8192))
	d.InjectFault(1, true, true, -1)
	d.ClearFaults()
	run(t, k, func(p *kernel.Proc) {
		ctx := p.Ctx()
		b, err := c.Bread(ctx, d, 1)
		if err != nil {
			t.Errorf("bread after ClearFaults: %v", err)
			return
		}
		c.Brelse(ctx, b)
	})
}

func TestFaultDirectionSelective(t *testing.T) {
	k, c, d := newRig(RAMDisk(256, 8192))
	d.InjectFault(9, false, true, -1) // writes only
	run(t, k, func(p *kernel.Proc) {
		ctx := p.Ctx()
		b, err := c.Bread(ctx, d, 9)
		if err != nil {
			t.Errorf("read should pass: %v", err)
			return
		}
		c.Brelse(ctx, b)
		wb := c.Getblk(ctx, d, 9)
		if err := c.Bwrite(ctx, wb); err != kernel.ErrIO {
			t.Errorf("write should fail: %v", err)
		}
	})
}

func TestFaultErrorSurfacesThroughBiodoneAsync(t *testing.T) {
	// An async write hitting a fault releases the buffer with BError;
	// the buffer must not stay cached with stale contents.
	k, c, d := newRig(RZ58(256, 8192))
	d.InjectFault(4, false, true, -1)
	run(t, k, func(p *kernel.Proc) {
		ctx := p.Ctx()
		b := c.Getblk(ctx, d, 4)
		c.Bawrite(ctx, b)
		p.SleepFor(200 * 1e6) // 200ms: let the write fail
		if got := c.Peek(d, 4); got != nil {
			t.Error("errored async buffer still cached")
		}
	})
}
