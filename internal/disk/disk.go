// Package disk provides simulated block devices: mechanical SCSI disks
// with seek, rotational latency, media-rate transfers and an on-drive
// read-ahead cache (modelled on DEC's RZ56 and RZ58, the drives
// measured in the paper), and a RAM disk (a block driver over main
// memory, as the paper built to test splice against a very fast
// device).
//
// A device accepts requests through the buf.Device Strategy interface,
// services them one at a time in virtual time — FIFO by default, or
// C-LOOK elevator order when Params.Elevator is set, which keeps the
// buffer cache's clustered dirty runs contiguous at the head — and
// completes each by raising a device interrupt that runs buf.Biodone,
// which is where splice's B_CALL handlers execute. Contiguous
// completion runs are tracked in Stats (ContigBlocks, LongestRun) so
// experiments can observe how much of the workload the clustering and
// elevator actually made sequential.
package disk

import (
	"fmt"

	"kdp/internal/buf"
	"kdp/internal/kernel"
	"kdp/internal/sim"
	"kdp/internal/trace"
)

// Params describes a disk model. All rates are bytes per second.
type Params struct {
	Name      string
	BlockSize int   // native block size (matches the buffer cache)
	Blocks    int64 // capacity in blocks

	// Mechanical characteristics; all zero for a RAM disk.
	RotationMs   float64 // full platter rotation in milliseconds
	AvgSeekMs    float64 // average seek time in milliseconds
	MaxSeekMs    float64 // full-stroke seek in milliseconds
	TrackSkewMs  float64 // head/track switch penalty on contiguous runs crossing a track
	BlocksPerTrk int64   // blocks per track (for skew modelling)

	MediaRate float64 // to/from media transfer rate
	BusRate   float64 // host transfer rate (SCSI bus / pseudo-DMA)

	// On-drive read-ahead cache.
	CacheBytes    int // total read-ahead cache size
	CacheSegments int // number of independent read-ahead segments

	// Fixed controller/request overhead (command decode, DMA setup).
	Overhead sim.Duration

	// Elevator enables C-LOOK request scheduling: the drive services
	// the queued request with the lowest block number at or above the
	// head position, wrapping to the lowest outstanding block when the
	// sweep completes. FIFO otherwise (the Ultrix sd driver's default
	// behaviour for the short queues of these experiments).
	Elevator bool

	// SyncCPU marks a pseudo-device whose strategy routine moves the
	// data synchronously with the CPU (the paper's RAM disk driver: a
	// bcopy to/from kernel BSS memory). Such requests complete inline
	// — no queueing, no completion interrupt, no sleeping in biowait —
	// and charge CPUCopyRate-paced time to whoever called strategy.
	SyncCPU bool

	// CPUCopyRate is the kernel memory copy bandwidth of a SyncCPU
	// device, in bytes per second.
	CPUCopyRate float64
}

// RZ56 returns the parameters of DEC's RZ56 SCSI disk as given in the
// paper: 8.3ms average rotational latency (3600 RPM), 16ms average
// seek, 1.66MB/s media rate, 64KB single-segment read-ahead cache.
func RZ56(blocks int64, blockSize int) Params {
	return Params{
		Name: "rz56", BlockSize: blockSize, Blocks: blocks,
		RotationMs: 16.6, AvgSeekMs: 16, MaxSeekMs: 35,
		TrackSkewMs: 1.2, BlocksPerTrk: 6,
		MediaRate: 1.66e6, BusRate: 2.5e6,
		CacheBytes: 64 << 10, CacheSegments: 1,
		Overhead: 700 * sim.Microsecond,
	}
}

// RZ58 returns the parameters of DEC's RZ58: 5.6ms average rotational
// latency (5400 RPM), under-12.5ms average seek, ~2.1MB/s media rate,
// 256KB read-ahead cache segmented into 4 read-ahead requests.
func RZ58(blocks int64, blockSize int) Params {
	return Params{
		Name: "rz58", BlockSize: blockSize, Blocks: blocks,
		RotationMs: 11.1, AvgSeekMs: 12.5, MaxSeekMs: 28,
		TrackSkewMs: 0.9, BlocksPerTrk: 8,
		MediaRate: 2.1e6, BusRate: 4.0e6,
		CacheBytes: 256 << 10, CacheSegments: 4,
		Overhead: 500 * sim.Microsecond,
	}
}

// RAMDisk returns the parameters of the paper's RAM disk driver: a
// block device over 16MB of statically allocated kernel memory. Its
// strategy routine is a synchronous CPU bcopy (there is no hardware to
// DMA from kernel BSS), so requests complete inline in the caller's
// context: a read/write copier burns CPU on it, while splice pays for
// it at interrupt level. The copy rate reflects cache-hot kernel
// buffer copies with the R3000's write buffers streaming.
func RAMDisk(blocks int64, blockSize int) Params {
	return Params{
		Name: "ram", BlockSize: blockSize, Blocks: blocks,
		MediaRate: 80e6, BusRate: 80e6,
		Overhead:    40 * sim.Microsecond,
		SyncCPU:     true,
		CPUCopyRate: 80e6,
	}
}

// Disk is a simulated block device. It implements buf.Device.
type Disk struct {
	k      *kernel.Kernel
	cache  *buf.Cache
	p      Params
	data   []byte
	queue  []*buf.Buf
	active bool

	headBlk  int64 // current head position (block)
	segments []raSegment

	// Fault injection: InjectFault's per-block arms in the kernel
	// fault plan (see fault.go).
	faults         map[int64]*blkFault
	siteRd, siteWr kernel.FaultSite

	// Stats
	nreads, nwrites   int64
	readBytes         int64
	writeBytes        int64
	seeks             int64
	cacheHits         int64
	cacheMisses       int64
	nerrors           int64
	busyTime          sim.Duration
	lastComplete      sim.Time
	maxQueueObserved  int
	totalQueueSamples int64

	// Contiguous completion-run accounting: runBlk is the block number
	// that would extend the current run (-1 = no run yet).
	runBlk       int64
	runLen       int64
	longestRun   int64
	contigBlocks int64
}

// raSegment is one read-ahead segment of the drive cache: after a media
// read finishes at block b, the drive keeps streaming [b+1, limit) into
// the segment at media rate.
type raSegment struct {
	start     int64    // first block covered
	limit     int64    // exclusive upper bound (cache capacity)
	fillFrom  int64    // first block being filled by streaming
	fillStart sim.Time // when streaming began
	lastUse   sim.Time
	valid     bool
}

// New creates a disk attached to kernel k. The buffer cache must be
// registered with SetCache before Biodone-completing requests can be
// dispatched (done automatically by fs setup helpers).
func New(k *kernel.Kernel, p Params) *Disk {
	if p.BlockSize <= 0 || p.Blocks <= 0 {
		panic("disk: bad geometry")
	}
	d := &Disk{
		k:      k,
		p:      p,
		data:   make([]byte, p.Blocks*int64(p.BlockSize)),
		runBlk: -1,
		siteRd: "disk." + p.Name + ".rderr",
		siteWr: "disk." + p.Name + ".wrerr",
	}
	if p.CacheSegments > 0 {
		d.segments = make([]raSegment, p.CacheSegments)
	}
	return d
}

// SetCache attaches the buffer cache whose Biodone completes requests.
func (d *Disk) SetCache(c *buf.Cache) { d.cache = c }

// Params returns the disk's model parameters.
func (d *Disk) Params() Params { return d.p }

// DevName implements buf.Device.
func (d *Disk) DevName() string { return d.p.Name }

// DevBlockSize implements buf.Device.
func (d *Disk) DevBlockSize() int { return d.p.BlockSize }

// DevBlocks implements buf.Device.
func (d *Disk) DevBlocks() int64 { return d.p.Blocks }

// QueueLen returns the number of requests waiting (excluding active).
func (d *Disk) QueueLen() int { return len(d.queue) }

// Stats describes device activity.
type Stats struct {
	Reads, Writes          int64
	ReadBytes, WriteBytes  int64
	Seeks                  int64
	CacheHits, CacheMisses int64
	Busy                   sim.Duration
	MaxQueue               int

	// ContigBlocks counts completions that extended a contiguous run
	// (serviced the block immediately after the previous completion);
	// LongestRun is the longest such run observed, in blocks. Together
	// they measure how sequential the serviced workload actually was —
	// the property the cache's write clustering and the C-LOOK elevator
	// exist to maximize.
	ContigBlocks int64
	LongestRun   int64
}

// Stats returns a snapshot of device counters.
func (d *Disk) Stats() Stats {
	return Stats{
		Reads: d.nreads, Writes: d.nwrites,
		ReadBytes: d.readBytes, WriteBytes: d.writeBytes,
		Seeks:     d.seeks,
		CacheHits: d.cacheHits, CacheMisses: d.cacheMisses,
		Busy: d.busyTime, MaxQueue: d.maxQueueObserved,
		ContigBlocks: d.contigBlocks, LongestRun: d.longestRun,
	}
}

// noteRun updates the contiguous completion-run accounting for a
// transfer that just serviced blkno.
func (d *Disk) noteRun(blkno int64) {
	if blkno == d.runBlk {
		d.runLen++
		d.contigBlocks++
	} else {
		d.runLen = 1
	}
	if d.runLen > d.longestRun {
		d.longestRun = d.runLen
	}
	d.runBlk = blkno + 1
}

// Strategy implements buf.Device: the request is queued and serviced in
// FIFO order; completion raises a device interrupt that calls
// buf.Biodone.
func (d *Disk) Strategy(b *buf.Buf) {
	if b.Bcount <= 0 || b.Bcount > d.p.BlockSize {
		panic(fmt.Sprintf("disk %s: bad bcount %d", d.p.Name, b.Bcount))
	}
	if b.Blkno < 0 || b.Blkno >= d.p.Blocks {
		panic(fmt.Sprintf("disk %s: block %d out of range", d.p.Name, b.Blkno))
	}
	if d.p.SyncCPU {
		d.completeSync(b)
		return
	}
	d.queue = append(d.queue, b)
	if n := len(d.queue); n > d.maxQueueObserved {
		d.maxQueueObserved = n
	}
	d.k.TraceEmit(trace.KindDiskQueue, 0, b.Blkno, int64(len(d.queue)), d.p.Name)
	if !d.active {
		d.active = true
		d.k.Hold() // keep the machine alive while the queue drains
		d.startNext()
	}
}

// completeSync services a SyncCPU (RAM disk) request inline: the
// driver's bcopy burns CPU in the calling context, then biodone runs
// immediately — no completion interrupt ever fires.
func (d *Disk) completeSync(b *buf.Buf) {
	svc := d.p.Overhead + sim.BytesAt(int64(b.Bcount), d.p.CPUCopyRate)
	d.k.TraceEmit(trace.KindDiskStart, 0, b.Blkno, int64(svc), d.p.Name)
	d.k.StealCPU(svc)
	d.busyTime += svc
	off := b.Blkno * int64(d.p.BlockSize)
	switch {
	case d.checkFault(b):
		d.failTransfer(b)
	case b.Flags&buf.BRead != 0:
		copy(b.Data[:b.Bcount], d.data[off:off+int64(b.Bcount)])
		d.nreads++
		d.readBytes += int64(b.Bcount)
	default:
		copy(d.data[off:off+int64(b.Bcount)], b.Data[:b.Bcount])
		d.nwrites++
		d.writeBytes += int64(b.Bcount)
	}
	d.noteRun(b.Blkno)
	d.traceCompletion(b)
	d.lastComplete = d.k.Now()
	if d.cache == nil {
		panic("disk: no buffer cache attached")
	}
	d.cache.Biodone(b)
}

// startNext begins servicing the next request — FIFO, or the C-LOOK
// elevator choice when enabled — and schedules its completion event.
func (d *Disk) startNext() {
	idx := 0
	if d.p.Elevator && len(d.queue) > 1 {
		idx = d.elevatorPick()
	}
	b := d.queue[idx]
	d.queue = append(d.queue[:idx], d.queue[idx+1:]...)
	svc := d.serviceTime(b)
	d.busyTime += svc
	d.k.TraceEmit(trace.KindDiskStart, 0, b.Blkno, int64(svc), d.p.Name)
	d.k.Engine().Schedule(svc, "disk:"+d.p.Name, func() {
		d.complete(b)
	})
}

// elevatorPick returns the queue index of the C-LOOK choice: the
// request with the smallest block number at or beyond the head, or the
// smallest outstanding block when the upward sweep is exhausted.
func (d *Disk) elevatorPick() int {
	bestUp, bestLow := -1, 0
	for i, b := range d.queue {
		if b.Blkno >= d.headBlk {
			if bestUp < 0 || b.Blkno < d.queue[bestUp].Blkno {
				bestUp = i
			}
		}
		if b.Blkno < d.queue[bestLow].Blkno {
			bestLow = i
		}
	}
	if bestUp >= 0 {
		return bestUp
	}
	return bestLow
}

// complete finishes the transfer: data is moved at completion time,
// then the completion interrupt runs biodone (and any splice handler
// hanging off it).
func (d *Disk) complete(b *buf.Buf) {
	off := b.Blkno * int64(d.p.BlockSize)
	switch {
	case d.checkFault(b):
		d.failTransfer(b)
	case b.Flags&buf.BRead != 0:
		copy(b.Data[:b.Bcount], d.data[off:off+int64(b.Bcount)])
		d.nreads++
		d.readBytes += int64(b.Bcount)
	default:
		copy(d.data[off:off+int64(b.Bcount)], b.Data[:b.Bcount])
		d.nwrites++
		d.writeBytes += int64(b.Bcount)
	}
	d.headBlk = b.Blkno + 1
	d.noteRun(b.Blkno)
	d.traceCompletion(b)
	d.lastComplete = d.k.Now()
	d.k.Interrupt(func() {
		if d.cache == nil {
			panic("disk: no buffer cache attached")
		}
		d.cache.Biodone(b)
	})
	if len(d.queue) > 0 {
		d.startNext()
	} else {
		d.active = false
		d.k.Release()
	}
}

// traceCompletion emits the completion event matching the transfer's
// outcome (read, write, or error).
func (d *Disk) traceCompletion(b *buf.Buf) {
	switch {
	case b.Flags&buf.BError != 0:
		d.k.TraceEmit(trace.KindDiskError, 0, b.Blkno, 0, d.p.Name)
	case b.Flags&buf.BRead != 0:
		d.k.TraceEmit(trace.KindDiskRead, 0, b.Blkno, int64(b.Bcount), d.p.Name)
	default:
		d.k.TraceEmit(trace.KindDiskWrite, 0, b.Blkno, int64(b.Bcount), d.p.Name)
	}
}

// Busy reports whether a transfer is in progress (or queued). Crash
// recovery uses it to wait out the point-of-no-return request.
func (d *Disk) Busy() bool { return d.active }

// Crash models the device side of a power cut: every queued request is
// lost (the data never reaches the platter; the buffer completes with
// an error so the cache can discard it), and the drive's volatile
// read-ahead cache is cleared. The request being serviced — if any —
// is past the point of no return and still completes: its sector lands
// on the platter when the already-scheduled completion event fires.
// Returns the number of dropped requests.
func (d *Disk) Crash() int {
	dropped := d.queue
	d.queue = nil
	for _, b := range dropped {
		b.Flags |= buf.BError
		b.Err = kernel.ErrIO
		b.Resid = b.Bcount
		d.traceCompletion(b)
		d.k.Interrupt(func() {
			if d.cache == nil {
				panic("disk: no buffer cache attached")
			}
			d.cache.Biodone(b)
		})
	}
	for i := range d.segments {
		d.segments[i] = raSegment{}
	}
	return len(dropped)
}

// ReadRaw copies block contents directly out of the backing store
// (host-side helper for tests and verification; no simulated time).
func (d *Disk) ReadRaw(blkno int64, p []byte) {
	off := blkno * int64(d.p.BlockSize)
	copy(p, d.data[off:])
}

// WriteRaw installs block contents directly (host-side helper used to
// preload media images in tests; no simulated time).
func (d *Disk) WriteRaw(blkno int64, p []byte) {
	off := blkno * int64(d.p.BlockSize)
	copy(d.data[off:], p)
}
