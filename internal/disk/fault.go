package disk

import (
	"kdp/internal/buf"
	"kdp/internal/kernel"
)

// InjectFault marks block blkno as defective: the next count transfers
// touching it in the selected direction(s) complete with an I/O error
// (B_ERROR + ErrIO) instead of moving data. A negative count makes the
// defect permanent. Used to exercise error paths end to end — most
// importantly splice's abort-and-drain behaviour, which the paper's
// prototype had to get right to avoid leaking cache buffers at
// interrupt level.
func (d *Disk) InjectFault(blkno int64, onRead, onWrite bool, count int) {
	if d.faults == nil {
		d.faults = make(map[int64]*fault)
	}
	d.faults[blkno] = &fault{onRead: onRead, onWrite: onWrite, count: count}
}

// ClearFaults removes every injected defect.
func (d *Disk) ClearFaults() { d.faults = nil }

// Errors reports how many transfers failed due to injected faults.
func (d *Disk) Errors() int64 { return d.nerrors }

// checkFault reports whether this transfer should fail, consuming one
// occurrence from a counted fault.
func (d *Disk) checkFault(b *buf.Buf) bool {
	f, ok := d.faults[b.Blkno]
	if !ok {
		return false
	}
	read := b.Flags&buf.BRead != 0
	if (read && !f.onRead) || (!read && !f.onWrite) {
		return false
	}
	if f.count == 0 {
		return false
	}
	if f.count > 0 {
		f.count--
	}
	d.nerrors++
	return true
}

// failTransfer completes b with an I/O error.
func (d *Disk) failTransfer(b *buf.Buf) {
	b.Flags |= buf.BError
	b.Err = kernel.ErrIO
	b.Resid = b.Bcount
}
