package disk

import (
	"kdp/internal/buf"
	"kdp/internal/kernel"
)

// Fault sites: every transfer the device services is one eligible
// occurrence of the site matching its direction ("disk.<name>.rderr" /
// "disk.<name>.wrerr"), with the block number as the site argument. A
// fire completes the transfer with B_ERROR + ErrIO instead of moving
// data — the interrupt-level error splice's abort-and-drain behaviour
// exists to survive. InjectFault below is a compatibility adapter over
// the kernel.FaultPlan registry; plans armed directly on the sites
// (kdpcheck -faults) go through exactly the same completion path.

// blkFault holds the plan arms backing one InjectFault call.
type blkFault struct {
	rd, wr *kernel.FaultArm
}

// ReadSite returns the disk's read-error fault site ID.
func (d *Disk) ReadSite() kernel.FaultSite { return d.siteRd }

// WriteSite returns the disk's write-error fault site ID.
func (d *Disk) WriteSite() kernel.FaultSite { return d.siteWr }

// InjectFault marks block blkno as defective: the next count transfers
// touching it in the selected direction(s) complete with an I/O error
// (B_ERROR + ErrIO) instead of moving data. A negative count makes the
// defect permanent; a repeated call for the same block replaces the
// previous defect. Implemented as quiet arms in the kernel fault plan,
// so it composes with externally injected plans without changing any
// traced stream.
func (d *Disk) InjectFault(blkno int64, onRead, onWrite bool, count int) {
	if d.faults == nil {
		d.faults = make(map[int64]*blkFault)
	}
	fp := d.k.Faults()
	if old := d.faults[blkno]; old != nil {
		fp.Remove(old.rd)
		fp.Remove(old.wr)
		delete(d.faults, blkno)
	}
	if count == 0 {
		return // defect already exhausted: nothing to arm
	}
	bf := &blkFault{}
	if onRead {
		bf.rd = fp.Arm(kernel.FaultArm{
			Site: d.siteRd, Every: 1, Match: blkno, Count: count, Quiet: true,
		})
	}
	if onWrite {
		bf.wr = fp.Arm(kernel.FaultArm{
			Site: d.siteWr, Every: 1, Match: blkno, Count: count, Quiet: true,
		})
	}
	d.faults[blkno] = bf
}

// ClearFaults removes every defect injected through InjectFault (arms
// placed directly in the fault plan are not touched).
func (d *Disk) ClearFaults() {
	fp := d.k.Faults()
	for _, bf := range d.faults {
		fp.Remove(bf.rd)
		fp.Remove(bf.wr)
	}
	d.faults = nil
}

// Errors reports how many transfers failed due to injected faults.
func (d *Disk) Errors() int64 { return d.nerrors }

// checkFault asks the fault plan whether this transfer fails. Every
// transfer is one eligible occurrence of the direction's site.
func (d *Disk) checkFault(b *buf.Buf) bool {
	site := d.siteWr
	if b.Flags&buf.BRead != 0 {
		site = d.siteRd
	}
	if d.k.Faults().Hit(site, b.Blkno) {
		d.nerrors++
		return true
	}
	return false
}

// failTransfer completes b with an I/O error.
func (d *Disk) failTransfer(b *buf.Buf) {
	b.Flags |= buf.BError
	b.Err = kernel.ErrIO
	b.Resid = b.Bcount
}
