package disk

import (
	"testing"

	"kdp/internal/buf"
	"kdp/internal/kernel"
	"kdp/internal/sim"
)

// queueMixed enqueues async reads of the given blocks back to back and
// returns the completion order and total elapsed time.
func queueMixed(t *testing.T, elevator bool, blocks []int64) ([]int64, sim.Duration) {
	t.Helper()
	p := RZ56(8192, 8192)
	p.Elevator = elevator
	k, c, d := newRig(p)
	var order []int64
	var elapsed sim.Duration
	run(t, k, func(pr *kernel.Proc) {
		ctx := pr.Ctx()
		t0 := pr.Now()
		for _, blk := range blocks {
			b, err := c.GetblkNB(ctx, d, blk)
			if err != nil {
				t.Errorf("getblk %d: %v", blk, err)
				return
			}
			b.Flags |= buf.BRead | buf.BCall
			b.Flags &^= buf.BDone
			b.Iodone = func(kk *kernel.Kernel, bb *buf.Buf) {
				order = append(order, bb.Blkno)
				c.Brelse(kk.IntrCtx(), bb)
			}
			d.Strategy(b)
		}
		for len(order) < len(blocks) {
			pr.SleepFor(20 * sim.Millisecond)
		}
		elapsed = pr.Now().Sub(t0)
	})
	return order, elapsed
}

func TestElevatorOrdersByBlock(t *testing.T) {
	blocks := []int64{4000, 100, 7000, 2000, 5000}
	order, _ := queueMixed(t, true, blocks)
	if len(order) != len(blocks) {
		t.Fatalf("completed %d of %d", len(order), len(blocks))
	}
	// First request is taken FIFO (queue had one element when service
	// started); the rest must be served in ascending C-LOOK order from
	// wherever the head ended up.
	for i := 2; i < len(order); i++ {
		prev, cur := order[i-1], order[i]
		if cur < prev && cur != minBlk(blocks) {
			// A single wrap to the lowest block is allowed.
			t.Fatalf("elevator order not monotone: %v", order)
		}
	}
}

func minBlk(blocks []int64) int64 {
	m := blocks[0]
	for _, b := range blocks {
		if b < m {
			m = b
		}
	}
	return m
}

func TestFIFOOrdersByArrival(t *testing.T) {
	blocks := []int64{4000, 100, 7000, 2000, 5000}
	order, _ := queueMixed(t, false, blocks)
	for i, blk := range order {
		if blk != blocks[i] {
			t.Fatalf("FIFO order violated: %v", order)
		}
	}
}

func TestElevatorReducesScatteredSeekTime(t *testing.T) {
	// A scattered batch completes faster under C-LOOK than FIFO.
	blocks := []int64{7000, 200, 6400, 900, 5800, 1500, 5000, 2200, 4400, 3000}
	_, fifoTime := queueMixed(t, false, blocks)
	_, elevTime := queueMixed(t, true, blocks)
	if elevTime >= fifoTime {
		t.Fatalf("elevator (%v) not faster than FIFO (%v) on scattered I/O", elevTime, fifoTime)
	}
}
