package disk

import (
	"testing"

	"kdp/internal/buf"
	"kdp/internal/kernel"
	"kdp/internal/sim"
)

func newRig(p Params) (*kernel.Kernel, *buf.Cache, *Disk) {
	cfg := kernel.DefaultConfig()
	cfg.MaxRunTime = 600 * sim.Second
	k := kernel.New(cfg)
	c := buf.NewCache(k, 64, p.BlockSize)
	d := New(k, p)
	d.SetCache(c)
	return k, c, d
}

func run(t *testing.T, k *kernel.Kernel, fn func(p *kernel.Proc)) {
	t.Helper()
	k.Spawn("test", fn)
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRAMDiskRoundTrip(t *testing.T) {
	k, c, d := newRig(RAMDisk(2048, 8192))
	run(t, k, func(p *kernel.Proc) {
		ctx := p.Ctx()
		b := c.Getblk(ctx, d, 10)
		for i := range b.Data {
			b.Data[i] = byte(i)
		}
		if err := c.Bwrite(ctx, b); err != nil {
			t.Errorf("bwrite: %v", err)
		}
		if err := c.InvalidateDev(ctx, d); err != nil {
			t.Errorf("invalidate: %v", err)
		}
		rb, err := c.Bread(ctx, d, 10)
		if err != nil {
			t.Errorf("bread: %v", err)
			return
		}
		for i := 0; i < 8192; i++ {
			if rb.Data[i] != byte(i) {
				t.Errorf("byte %d = %d, want %d", i, rb.Data[i], byte(i))
				return
			}
		}
		c.Brelse(ctx, rb)
	})
}

func TestRAMDiskIsFast(t *testing.T) {
	k, c, d := newRig(RAMDisk(2048, 8192))
	var elapsed sim.Duration
	run(t, k, func(p *kernel.Proc) {
		ctx := p.Ctx()
		t0 := p.Now()
		for blk := int64(0); blk < 100; blk++ {
			b, err := c.Bread(ctx, d, blk)
			if err != nil {
				t.Errorf("bread: %v", err)
				return
			}
			b.Flags |= buf.BAge // force recycle so every read is a miss
			c.Brelse(ctx, b)
			_ = c.InvalidateDev(ctx, d)
		}
		elapsed = p.Now().Sub(t0)
	})
	// 100 blocks at ~0.5ms each: well under 100ms.
	if elapsed > 200*sim.Millisecond {
		t.Fatalf("RAM disk too slow: %v for 100 blocks", elapsed)
	}
}

func TestMechanicalDiskSequentialStreamsNearMediaRate(t *testing.T) {
	k, c, d := newRig(RZ58(4096, 8192))
	const nblocks = 256 // 2MB
	var elapsed sim.Duration
	run(t, k, func(p *kernel.Proc) {
		ctx := p.Ctx()
		t0 := p.Now()
		for blk := int64(0); blk < nblocks; blk++ {
			b, err := c.Bread(ctx, d, blk)
			if err != nil {
				t.Errorf("bread: %v", err)
				return
			}
			b.Flags |= buf.BAge
			c.Brelse(ctx, b)
		}
		elapsed = p.Now().Sub(t0)
	})
	bytes := float64(nblocks * 8192)
	rate := bytes / elapsed.Seconds()
	// Sequential reads with the drive's read-ahead cache should run
	// near (within 2x of) the media rate, and far above what
	// per-request seek+rotation would allow (~0.5MB/s).
	if rate < 1.0e6 {
		t.Fatalf("sequential read rate %.0f B/s; read-ahead cache not effective", rate)
	}
	if rate > 4.2e6 {
		t.Fatalf("sequential read rate %.0f B/s exceeds the bus rate", rate)
	}
	st := d.Stats()
	if st.CacheHits < nblocks/2 {
		t.Fatalf("drive cache hits = %d of %d; read-ahead not working", st.CacheHits, nblocks)
	}
}

func TestRandomReadsSlowerThanSequential(t *testing.T) {
	seq := measureReadPattern(t, false)
	rnd := measureReadPattern(t, true)
	if rnd < 2*seq {
		t.Fatalf("random reads (%v) not much slower than sequential (%v)", rnd, seq)
	}
}

func measureReadPattern(t *testing.T, random bool) sim.Duration {
	t.Helper()
	k, c, d := newRig(RZ56(8192, 8192))
	r := sim.NewRand(7)
	var elapsed sim.Duration
	run(t, k, func(p *kernel.Proc) {
		ctx := p.Ctx()
		t0 := p.Now()
		for i := int64(0); i < 64; i++ {
			blk := i
			if random {
				blk = r.Int63n(8192)
			}
			b, err := c.Bread(ctx, d, blk)
			if err != nil {
				t.Errorf("bread: %v", err)
				return
			}
			b.Flags |= buf.BAge
			c.Brelse(ctx, b)
		}
		elapsed = p.Now().Sub(t0)
	})
	return elapsed
}

func TestSequentialWritesAvoidSeeks(t *testing.T) {
	k, c, d := newRig(RZ58(4096, 8192))
	run(t, k, func(p *kernel.Proc) {
		ctx := p.Ctx()
		for blk := int64(0); blk < 64; blk++ {
			b := c.Getblk(ctx, d, blk)
			if err := c.Bwrite(ctx, b); err != nil {
				t.Errorf("bwrite: %v", err)
				return
			}
		}
	})
	st := d.Stats()
	// First access seeks; the rest are contiguous.
	if st.Seeks > 3 {
		t.Fatalf("sequential writes performed %d seeks", st.Seeks)
	}
	if st.Writes != 64 {
		t.Fatalf("writes = %d, want 64", st.Writes)
	}
}

func TestWriteInvalidatesReadAhead(t *testing.T) {
	k, c, d := newRig(RZ58(4096, 8192))
	run(t, k, func(p *kernel.Proc) {
		ctx := p.Ctx()
		b, _ := c.Bread(ctx, d, 0) // starts read-ahead segment at 1..
		c.Brelse(ctx, b)
		p.SleepFor(200 * sim.Millisecond) // let streaming fill
		wb := c.Getblk(ctx, d, 5)
		_ = c.Bwrite(ctx, wb) // lands inside the segment
	})
	for i := range d.segments {
		if d.segments[i].valid {
			t.Fatal("write did not invalidate the overlapping read-ahead segment")
		}
	}
}

func TestRZ58FourSegmentsSupportInterleavedStreams(t *testing.T) {
	// Two interleaved sequential streams: a 4-segment drive keeps both
	// in cache, a 1-segment drive thrashes.
	hits := func(p Params) int64 {
		k, c, d := newRig(p)
		run(t, k, func(pr *kernel.Proc) {
			ctx := pr.Ctx()
			for i := int64(0); i < 48; i++ {
				for _, base := range []int64{0, 2048} {
					b, err := c.Bread(ctx, d, base+i)
					if err != nil {
						t.Errorf("bread: %v", err)
						return
					}
					b.Flags |= buf.BAge
					c.Brelse(ctx, b)
					_ = c.InvalidateDev(ctx, d)
				}
			}
		})
		return d.Stats().CacheHits
	}
	h58 := hits(RZ58(8192, 8192))
	h56 := hits(RZ56(8192, 8192))
	if h58 <= h56 {
		t.Fatalf("4-segment cache hits (%d) not better than 1-segment (%d) on interleaved streams", h58, h56)
	}
}

func TestDiskQueueFIFOAndBusyAccounting(t *testing.T) {
	k, c, d := newRig(RAMDisk(2048, 8192))
	var order []int64
	run(t, k, func(p *kernel.Proc) {
		ctx := p.Ctx()
		// Queue several async writes back to back.
		for blk := int64(0); blk < 8; blk++ {
			b := c.Getblk(ctx, d, blk)
			b.Iodone = func(kk *kernel.Kernel, bb *buf.Buf) {
				order = append(order, bb.Blkno)
				c.Brelse(kk.IntrCtx(), bb)
			}
			b.Flags |= buf.BCall
			b.Flags &^= buf.BRead | buf.BDone
			d.Strategy(b)
		}
		p.SleepFor(100 * sim.Millisecond)
	})
	if len(order) != 8 {
		t.Fatalf("completions = %d, want 8", len(order))
	}
	for i, blk := range order {
		if blk != int64(i) {
			t.Fatalf("completion order %v not FIFO", order)
		}
	}
	if d.Stats().Busy <= 0 {
		t.Fatal("busy time not accounted")
	}
}

func TestDeviceInterruptStealsCPU(t *testing.T) {
	// A compute-bound proc must be measurably delayed by a stream of
	// disk interrupts.
	k, c, d := newRig(RAMDisk(2048, 8192))
	var done sim.Time
	k.Spawn("io", func(p *kernel.Proc) {
		ctx := p.Ctx()
		for blk := int64(0); blk < 40; blk++ {
			b := c.Getblk(ctx, d, blk)
			c.Bawrite(ctx, b)
		}
	})
	k.Spawn("cpu", func(p *kernel.Proc) {
		p.Compute(50 * sim.Millisecond)
		done = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done <= sim.Time(50*sim.Millisecond) {
		t.Fatalf("compute finished at %v; interrupts stole no time", done)
	}
}

func TestRawAccessHelpers(t *testing.T) {
	k, _, d := newRig(RAMDisk(64, 8192))
	_ = k
	in := make([]byte, 8192)
	for i := range in {
		in[i] = byte(i * 3)
	}
	d.WriteRaw(5, in)
	out := make([]byte, 8192)
	d.ReadRaw(5, out)
	for i := range out {
		if out[i] != in[i] {
			t.Fatalf("raw mismatch at %d", i)
		}
	}
}

func TestParamsPresetsSane(t *testing.T) {
	for _, p := range []Params{RZ56(1024, 8192), RZ58(1024, 8192), RAMDisk(1024, 8192)} {
		if p.Blocks != 1024 || p.BlockSize != 8192 {
			t.Fatalf("%s geometry wrong", p.Name)
		}
		if p.MediaRate <= 0 || p.BusRate <= 0 {
			t.Fatalf("%s rates wrong", p.Name)
		}
	}
	if RZ56(1, 1).MediaRate >= RZ58(1, 1).MediaRate {
		t.Fatal("RZ56 should be slower than RZ58")
	}
}
