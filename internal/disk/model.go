package disk

import (
	"math"

	"kdp/internal/buf"
	"kdp/internal/sim"
)

// serviceTime computes how long the drive takes to service request b,
// advancing the drive-cache model state as a side effect.
func (d *Disk) serviceTime(b *buf.Buf) sim.Duration {
	n := int64(b.Bcount)
	if d.p.RotationMs == 0 {
		// RAM disk: fixed driver overhead plus pseudo-DMA at memory
		// speed. No mechanics, no drive cache.
		return d.p.Overhead + sim.BytesAt(n, d.p.BusRate)
	}
	if b.Flags&buf.BRead != 0 {
		return d.readTime(b.Blkno, n)
	}
	return d.writeTime(b.Blkno, n)
}

func (d *Disk) readTime(blkno, n int64) sim.Duration {
	now := d.k.Now()
	// Drive cache lookup.
	if seg := d.findSegment(blkno); seg != nil {
		seg.lastUse = now
		d.cacheHits++
		avail := d.segAvailable(seg, now)
		bus := sim.BytesAt(n, d.p.BusRate)
		if blkno < avail {
			// Fully prefetched: command overhead + bus transfer.
			return d.p.Overhead + bus
		}
		// The drive is still streaming toward this block: wait for the
		// media to reach the end of the block, then transfer.
		blockMedia := sim.BytesAt(int64(d.p.BlockSize), d.p.MediaRate)
		ready := seg.fillStart.Add(sim.Duration(blkno+1-seg.fillFrom) * blockMedia)
		wait := ready.Sub(now)
		if wait < 0 {
			wait = 0
		}
		return d.p.Overhead + wait + bus
	}
	// Miss: mechanical access, then start a fresh read-ahead segment.
	d.cacheMisses++
	svc := d.p.Overhead + d.mechanical(blkno) + sim.BytesAt(n, d.p.MediaRate)
	d.startSegment(blkno, now.Add(svc))
	return svc
}

func (d *Disk) writeTime(blkno, n int64) sim.Duration {
	// Writes invalidate any overlapping read-ahead state and interrupt
	// streaming.
	for i := range d.segments {
		s := &d.segments[i]
		if s.valid && blkno >= s.start-1 && blkno < s.limit {
			s.valid = false
		}
	}
	return d.p.Overhead + d.mechanical(blkno) + sim.BytesAt(n, d.p.MediaRate)
}

// mechanical returns seek + rotational positioning time to reach blkno
// from the current head position. Contiguous accesses pay only a track
// skew when they cross a track boundary; near-contiguous forward
// accesses (interleaved FFS layout) wait for the platter to pass over
// the skipped blocks rather than paying a full seek + rotation.
func (d *Disk) mechanical(blkno int64) sim.Duration {
	if blkno == d.headBlk {
		if d.p.BlocksPerTrk > 0 && blkno%d.p.BlocksPerTrk == 0 {
			return msec(d.p.TrackSkewMs)
		}
		return 0
	}
	if gap := blkno - d.headBlk; gap > 0 && gap <= 8 {
		passOver := sim.Duration(gap) * sim.BytesAt(int64(d.p.BlockSize), d.p.MediaRate)
		if d.p.BlocksPerTrk > 0 && blkno/d.p.BlocksPerTrk != d.headBlk/d.p.BlocksPerTrk {
			passOver += msec(d.p.TrackSkewMs)
		}
		return passOver
	}
	d.seeks++
	dist := blkno - d.headBlk
	if dist < 0 {
		dist = -dist
	}
	frac := float64(dist) / float64(d.p.Blocks)
	minSeek := d.p.AvgSeekMs / 3
	seekMs := minSeek + (d.p.MaxSeekMs-minSeek)*math.Sqrt(frac)
	rotMs := d.k.Rand().Float64() * d.p.RotationMs
	return msec(seekMs) + msec(rotMs)
}

func msec(ms float64) sim.Duration {
	return sim.Duration(ms * float64(sim.Millisecond))
}

// segBlocks returns the per-segment capacity in blocks.
func (d *Disk) segBlocks() int64 {
	if d.p.CacheSegments == 0 {
		return 0
	}
	return int64(d.p.CacheBytes / d.p.CacheSegments / d.p.BlockSize)
}

// findSegment returns the read-ahead segment covering blkno, if any.
func (d *Disk) findSegment(blkno int64) *raSegment {
	for i := range d.segments {
		s := &d.segments[i]
		if s.valid && blkno >= s.start && blkno < s.limit {
			return s
		}
	}
	return nil
}

// segAvailable returns the first block NOT yet streamed into the
// segment at time t.
func (d *Disk) segAvailable(s *raSegment, t sim.Time) int64 {
	blockMedia := sim.BytesAt(int64(d.p.BlockSize), d.p.MediaRate)
	if blockMedia <= 0 {
		return s.limit
	}
	done := int64(t.Sub(s.fillStart) / blockMedia)
	if done < 0 {
		done = 0
	}
	avail := s.fillFrom + done
	if avail > s.limit {
		avail = s.limit
	}
	return avail
}

// startSegment begins read-ahead streaming after a media read of blkno
// completes at time fillStart, recycling the least-recently-used
// segment.
func (d *Disk) startSegment(blkno int64, fillStart sim.Time) {
	if len(d.segments) == 0 {
		return
	}
	victim := &d.segments[0]
	for i := range d.segments {
		s := &d.segments[i]
		if !s.valid {
			victim = s
			break
		}
		if s.lastUse < victim.lastUse {
			victim = s
		}
	}
	*victim = raSegment{
		start:     blkno + 1,
		limit:     blkno + 1 + d.segBlocks(),
		fillFrom:  blkno + 1,
		fillStart: fillStart,
		lastUse:   fillStart,
		valid:     true,
	}
	if victim.limit > d.p.Blocks {
		victim.limit = d.p.Blocks
	}
}
