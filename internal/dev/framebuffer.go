package dev

import (
	"kdp/internal/kernel"
	"kdp/internal/sim"
)

// FBParams configures a frame-capturing framebuffer.
type FBParams struct {
	// Path is the device special file (e.g. "/dev/fb0").
	Path string
	// FrameBytes is the size of one captured frame.
	FrameBytes int
	// FPS is the capture rate in frames per second.
	FPS float64
	// Frames bounds the capture; 0 means unbounded (no EOF).
	Frames int
	// BufFrames is how many captured frames the device buffers before
	// dropping the oldest (a real capture device overwrites).
	BufFrames int
}

// Framebuffer is a frame source: it "captures" a synthetic frame every
// 1/FPS seconds, which readers and splice sources consume. It supports
// the paper's framebuffer-to-socket splice (§5.1) for sending graphical
// images and video.
type Framebuffer struct {
	k *kernel.Kernel
	p FBParams

	frames   [][]byte
	captured int
	dropped  int64
	eof      bool
	running  bool

	// One pending splice read at a time (the splice engine issues them
	// serially).
	pendingMax     int
	pendingDeliver func([]byte, bool, error)
}

// NewFramebuffer creates the device, registers its special file, and
// starts capturing when the clock runs.
func NewFramebuffer(k *kernel.Kernel, p FBParams) *Framebuffer {
	if p.FrameBytes <= 0 || p.FPS <= 0 {
		panic("dev: framebuffer needs FrameBytes and FPS")
	}
	if p.BufFrames <= 0 {
		p.BufFrames = 8
	}
	fb := &Framebuffer{k: k, p: p}
	k.RegisterDev(p.Path, func(ctx kernel.Ctx) (kernel.FileOps, error) {
		return fb, nil
	})
	// Capture runs on engine events without holding the kernel alive:
	// the machine may exit with capture still scheduled, as a real
	// display keeps refreshing regardless of processes.
	fb.running = true
	k.Engine().Schedule(fb.framePeriod(), "fbcap", fb.captureFrame)
	return fb
}

func (fb *Framebuffer) framePeriod() sim.Duration {
	return sim.Duration(float64(sim.Second) / fb.p.FPS)
}

// Dropped reports frames overwritten before anyone consumed them.
func (fb *Framebuffer) Dropped() int64 { return fb.dropped }

// CapturedFrames reports how many frames have been captured.
func (fb *Framebuffer) CapturedFrames() int { return fb.captured }

// captureFrame synthesizes the next frame at interrupt level.
func (fb *Framebuffer) captureFrame() {
	if fb.eof || (fb.p.Frames > 0 && fb.captured >= fb.p.Frames) {
		fb.eof = true
		fb.running = false
		fb.k.Interrupt(fb.serveWaiters)
		return
	}
	frame := make([]byte, fb.p.FrameBytes)
	seq := byte(fb.captured)
	for i := range frame {
		frame[i] = seq ^ byte(i*13)
	}
	fb.captured++
	if len(fb.frames) >= fb.p.BufFrames {
		fb.frames = fb.frames[1:]
		fb.dropped++
	}
	fb.frames = append(fb.frames, frame)
	fb.k.Interrupt(fb.serveWaiters)
	fb.k.Engine().Schedule(fb.framePeriod(), "fbcap", fb.captureFrame)
}

// serveWaiters hands data to a pending splice read and wakes blocked
// readers.
func (fb *Framebuffer) serveWaiters() {
	if fb.pendingDeliver != nil && (len(fb.frames) > 0 || fb.eof) {
		deliver := fb.pendingDeliver
		fb.pendingDeliver = nil
		data, eof := fb.takeFrame(fb.pendingMax)
		deliver(data, eof, nil)
	}
	fb.k.Wakeup(fb)
}

// takeFrame removes up to max bytes of the oldest frame.
func (fb *Framebuffer) takeFrame(max int) (data []byte, eof bool) {
	if len(fb.frames) == 0 {
		return nil, fb.eof
	}
	f := fb.frames[0]
	if max >= len(f) {
		fb.frames = fb.frames[1:]
	} else {
		fb.frames[0] = f[max:]
		f = f[:max]
	}
	return f, fb.eof && len(fb.frames) == 0
}

// Read implements kernel.FileOps: blocks until a frame (or EOF).
func (fb *Framebuffer) Read(ctx kernel.Ctx, p []byte, off int64) (int, error) {
	for len(fb.frames) == 0 {
		if fb.eof {
			return 0, nil
		}
		if err := ctx.Sleep(fb, kernel.PSOCK+1); err != nil {
			return 0, err
		}
	}
	data, _ := fb.takeFrame(len(p))
	copy(p, data)
	return len(data), nil
}

// Write implements kernel.FileOps: capture-only device.
func (fb *Framebuffer) Write(ctx kernel.Ctx, p []byte, off int64) (int, error) {
	return 0, kernel.ErrOpNotSupp
}

// Size implements kernel.FileOps.
func (fb *Framebuffer) Size(ctx kernel.Ctx) (int64, error) { return 0, nil }

// Sync implements kernel.FileOps.
func (fb *Framebuffer) Sync(ctx kernel.Ctx) error { return nil }

// Close implements kernel.FileOps. The capture engine keeps running
// (screen refresh does not stop because a reader closed).
func (fb *Framebuffer) Close(ctx kernel.Ctx) error { return nil }

// Stop halts capture (test/teardown helper).
func (fb *Framebuffer) Stop() {
	if fb.running {
		fb.eof = true
		fb.p.Frames = fb.captured
	}
}

// SpliceRead implements the splice Source interface: deliver the oldest
// captured frame, or park the request until one arrives.
func (fb *Framebuffer) SpliceRead(max int, deliver func([]byte, bool, error)) {
	if len(fb.frames) > 0 || fb.eof {
		data, eof := fb.takeFrame(max)
		deliver(data, eof, nil)
		return
	}
	if fb.pendingDeliver != nil {
		deliver(nil, false, kernel.ErrWouldBlock)
		return
	}
	fb.pendingMax = max
	fb.pendingDeliver = deliver
}

// CancelSpliceRead withdraws a parked splice read (splice interrupt
// path).
func (fb *Framebuffer) CancelSpliceRead() bool {
	if fb.pendingDeliver == nil {
		return false
	}
	fb.pendingDeliver = nil
	return true
}
