package dev

import (
	"kdp/internal/kernel"
)

// Pipe is an in-kernel bounded byte queue usable as both a splice sink
// and a splice source, so two splices can be chained through it
// (file → pipe → socket, etc.) with kernel-level backpressure at each
// stage. The paper positions splice as the reverse of the 8th-edition
// streams pipe — cross-connecting devices instead of processes — and a
// pipe object closes the loop: spliced pathways become composable.
//
// It also implements kernel.FileOps, so ordinary read/write processes
// can sit on either end.
type Pipe struct {
	k   *kernel.Kernel
	cap int

	buf    []byte
	closed bool

	// Pending splice-side callbacks.
	writeWaiters []pipeWrite
	readWaiter   func([]byte, bool, error)
	readMax      int

	pollQ kernel.PollQueue

	in, out int64
}

type pipeWrite struct {
	data []byte
	done func(error)
}

// NewPipe creates a pipe with the given buffer capacity (default 64KB)
// and optionally registers it at path.
func NewPipe(k *kernel.Kernel, path string, capacity int) *Pipe {
	if capacity <= 0 {
		capacity = 64 << 10
	}
	p := &Pipe{k: k, cap: capacity}
	if path != "" {
		k.RegisterDev(path, func(ctx kernel.Ctx) (kernel.FileOps, error) {
			return p, nil
		})
	}
	return p
}

// Buffered reports the bytes currently queued.
func (pp *Pipe) Buffered() int { return len(pp.buf) }

// Transferred returns total bytes in and out.
func (pp *Pipe) Transferred() (in, out int64) { return pp.in, pp.out }

// CloseWrite marks end-of-stream: readers drain the remaining bytes and
// then see EOF.
func (pp *Pipe) CloseWrite() {
	pp.closed = true
	pp.serveReader()
	pp.wake(kernel.PollIn | kernel.PollHup)
}

// wake rouses blocked readers/writers and the pollers whose interest
// intersects events.
func (pp *Pipe) wake(events int) {
	pp.k.Wakeup(pp)
	pp.pollQ.Notify(events)
}

// admit moves as much pending write data as fits, completing write
// callbacks whose data has been fully admitted.
func (pp *Pipe) admit() {
	for len(pp.writeWaiters) > 0 {
		w := &pp.writeWaiters[0]
		space := pp.cap - len(pp.buf)
		if space <= 0 {
			return
		}
		n := len(w.data)
		if n > space {
			n = space
		}
		pp.buf = append(pp.buf, w.data[:n]...)
		pp.in += int64(n)
		w.data = w.data[n:]
		if len(w.data) > 0 {
			return
		}
		done := w.done
		pp.writeWaiters = pp.writeWaiters[1:]
		if done != nil {
			done(nil)
		}
	}
}

// serveReader hands buffered data to a waiting splice read.
func (pp *Pipe) serveReader() {
	pp.admit()
	if pp.readWaiter == nil {
		return
	}
	if len(pp.buf) == 0 && !pp.closed {
		return
	}
	deliver := pp.readWaiter
	pp.readWaiter = nil
	data, eof := pp.take(pp.readMax)
	deliver(data, eof, nil)
	// Taking data may have opened space for writers, which may in turn
	// satisfy a newly armed reader.
	pp.admit()
	pp.wake(kernel.PollIn | kernel.PollOut)
}

// take removes up to max buffered bytes.
func (pp *Pipe) take(max int) (data []byte, eof bool) {
	n := len(pp.buf)
	if n > max {
		n = max
	}
	if n > 0 {
		data = append([]byte(nil), pp.buf[:n]...)
		pp.buf = pp.buf[n:]
		pp.out += int64(n)
	}
	return data, pp.closed && len(pp.buf) == 0
}

// ---- kernel.FileOps ----

// Read implements kernel.FileOps: blocks until data or EOF.
func (pp *Pipe) Read(ctx kernel.Ctx, b []byte, off int64) (int, error) {
	for len(pp.buf) == 0 {
		if pp.closed {
			return 0, nil
		}
		if !ctx.CanSleep() {
			return 0, kernel.ErrWouldBlock
		}
		if err := ctx.Sleep(pp, kernel.PSOCK+1); err != nil {
			return 0, err
		}
	}
	data, _ := pp.take(len(b))
	copy(b, data)
	pp.admit()
	pp.wake(kernel.PollIn | kernel.PollOut)
	return len(data), nil
}

// Write implements kernel.FileOps: blocks until all bytes are admitted.
// A nonblocking write admits what fits right now — ErrWouldBlock only
// when not a single byte can be taken.
func (pp *Pipe) Write(ctx kernel.Ctx, b []byte, off int64) (int, error) {
	if pp.closed {
		return 0, kernel.ErrBadFD
	}
	if !ctx.CanSleep() {
		if len(pp.writeWaiters) > 0 {
			return 0, kernel.ErrWouldBlock
		}
		space := pp.cap - len(pp.buf)
		if space <= 0 {
			return 0, kernel.ErrWouldBlock
		}
		n := len(b)
		if n > space {
			n = space
		}
		pp.buf = append(pp.buf, b[:n]...)
		pp.in += int64(n)
		pp.serveReader()
		pp.wake(kernel.PollIn)
		return n, nil
	}
	donef := false
	pp.SpliceWrite(b, func(error) {
		donef = true
		pp.k.Wakeup(&donef)
	})
	for !donef {
		if err := ctx.Sleep(&donef, kernel.PSOCK); err != nil {
			return 0, err
		}
	}
	return len(b), nil
}

// Size implements kernel.FileOps.
func (pp *Pipe) Size(ctx kernel.Ctx) (int64, error) { return int64(len(pp.buf)), nil }

// Sync implements kernel.FileOps.
func (pp *Pipe) Sync(ctx kernel.Ctx) error { return nil }

// Close implements kernel.FileOps: closing the descriptor ends the
// write side.
func (pp *Pipe) Close(ctx kernel.Ctx) error {
	pp.CloseWrite()
	return nil
}

// ---- kernel.PollOps ----

// PollReady implements kernel.PollOps: readable when bytes (or EOF) are
// buffered; writable when buffer space exists and no earlier writer is
// queued ahead.
func (pp *Pipe) PollReady(events int) int {
	r := 0
	if events&kernel.PollIn != 0 && (len(pp.buf) > 0 || pp.closed) {
		r |= kernel.PollIn
	}
	if events&kernel.PollOut != 0 && !pp.closed &&
		len(pp.writeWaiters) == 0 && len(pp.buf) < pp.cap {
		r |= kernel.PollOut
	}
	if pp.closed {
		r |= kernel.PollHup
	}
	return r
}

// PollQueue implements kernel.PollOps.
func (pp *Pipe) PollQueue() *kernel.PollQueue { return &pp.pollQ }

// ---- splice endpoints ----

// SpliceWrite implements the splice Sink interface: done fires once the
// whole chunk has been admitted to the pipe buffer (backpressure).
func (pp *Pipe) SpliceWrite(data []byte, done func(error)) {
	if pp.closed {
		done(kernel.ErrBadFD)
		return
	}
	pp.writeWaiters = append(pp.writeWaiters, pipeWrite{
		data: append([]byte(nil), data...),
		done: done,
	})
	pp.serveReader()
	if len(pp.writeWaiters) > 0 {
		pp.admit()
	}
	pp.wake(kernel.PollIn)
}

// SpliceRead implements the splice Source interface.
func (pp *Pipe) SpliceRead(max int, deliver func([]byte, bool, error)) {
	pp.admit()
	if len(pp.buf) > 0 || pp.closed {
		data, eof := pp.take(max)
		deliver(data, eof, nil)
		pp.admit()
		pp.wake(kernel.PollIn | kernel.PollOut)
		return
	}
	if pp.readWaiter != nil {
		deliver(nil, false, kernel.ErrWouldBlock)
		return
	}
	pp.readMax = max
	pp.readWaiter = deliver
}

// CancelSpliceRead withdraws a parked splice read (splice interrupt
// path).
func (pp *Pipe) CancelSpliceRead() bool {
	if pp.readWaiter == nil {
		return false
	}
	pp.readWaiter = nil
	return true
}
