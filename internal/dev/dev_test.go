package dev

import (
	"testing"

	"kdp/internal/kernel"
	"kdp/internal/sim"
)

func newK() *kernel.Kernel {
	cfg := kernel.DefaultConfig()
	cfg.MaxRunTime = 600 * sim.Second
	return kernel.New(cfg)
}

func TestNullDevice(t *testing.T) {
	k := newK()
	n := NewNull(k)
	k.Spawn("test", func(p *kernel.Proc) {
		fd, err := p.Open("/dev/null", kernel.ORdWr)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if w, err := p.Write(fd, make([]byte, 1000)); w != 1000 || err != nil {
			t.Errorf("write: %d %v", w, err)
		}
		if r, err := p.Read(fd, make([]byte, 10)); r != 0 || err != nil {
			t.Errorf("read: %d %v (want EOF)", r, err)
		}
		_ = p.Close(fd)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n.BytesWritten() != 1000 {
		t.Fatalf("written = %d", n.BytesWritten())
	}
}

func TestDACDrainsAtPlaybackRate(t *testing.T) {
	k := newK()
	d := NewDAC(k, DACParams{Path: "/dev/speaker", Rate: 8000, BufBytes: 64 << 10})
	var elapsed sim.Duration
	k.Spawn("player", func(p *kernel.Proc) {
		fd, _ := p.Open("/dev/speaker", kernel.OWrOnly)
		t0 := p.Now()
		// 16000 bytes at 8000 B/s must take ~2s to fully play.
		if _, err := p.Write(fd, make([]byte, 16000)); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := p.Fsync(fd); err != nil { // drain
			t.Errorf("drain: %v", err)
		}
		elapsed = p.Now().Sub(t0)
		_ = p.Close(fd)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed < 1900*sim.Millisecond || elapsed > 2200*sim.Millisecond {
		t.Fatalf("drain took %v, want ~2s", elapsed)
	}
	if d.Played() != 16000 {
		t.Fatalf("played = %d", d.Played())
	}
}

func TestDACBackpressureBlocksWriter(t *testing.T) {
	k := newK()
	NewDAC(k, DACParams{Path: "/dev/slow", Rate: 1000, BufBytes: 2000})
	var elapsed sim.Duration
	k.Spawn("writer", func(p *kernel.Proc) {
		fd, _ := p.Open("/dev/slow", kernel.OWrOnly)
		t0 := p.Now()
		// 6KB into a 2KB buffer at 1KB/s: the writes must block until
		// space drains, so accepting everything takes ~4s.
		for i := 0; i < 6; i++ {
			if _, err := p.Write(fd, make([]byte, 1000)); err != nil {
				t.Errorf("write %d: %v", i, err)
			}
		}
		elapsed = p.Now().Sub(t0)
		_ = p.Close(fd)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed < 3*sim.Second {
		t.Fatalf("writer not throttled: %v", elapsed)
	}
}

func TestDACCapture(t *testing.T) {
	k := newK()
	d := NewDAC(k, DACParams{Path: "/dev/cap", Rate: 1e6, BufBytes: 64 << 10, Capture: true})
	want := []byte("digital audio samples")
	k.Spawn("w", func(p *kernel.Proc) {
		fd, _ := p.Open("/dev/cap", kernel.OWrOnly)
		_, _ = p.Write(fd, want)
		_ = p.Fsync(fd)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if string(d.Captured()) != string(want) {
		t.Fatalf("captured %q", d.Captured())
	}
}

func TestDACSpliceWriteThrottledCompletion(t *testing.T) {
	k := newK()
	d := NewDAC(k, DACParams{Path: "/dev/s", Rate: 10000, BufBytes: 64 << 10})
	var doneAt sim.Time
	k.Spawn("idle", func(p *kernel.Proc) { p.SleepFor(3 * sim.Second) })
	k.Engine().Schedule(0, "kick", func() {
		d.SpliceWrite(make([]byte, 10000), func(err error) {
			if err != nil {
				t.Errorf("splice write: %v", err)
			}
			doneAt = k.Now()
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 10000 bytes at 10000 B/s: completion near t=1s, not immediately.
	if doneAt < sim.Time(900*sim.Millisecond) {
		t.Fatalf("sink completion at %v, want ~1s (paced)", doneAt)
	}
}

func TestFramebufferCapturesFrames(t *testing.T) {
	k := newK()
	fb := NewFramebuffer(k, FBParams{Path: "/dev/fb0", FrameBytes: 1024, FPS: 30, Frames: 10})
	var got [][]byte
	k.Spawn("reader", func(p *kernel.Proc) {
		fd, _ := p.Open("/dev/fb0", kernel.ORdOnly)
		buf := make([]byte, 1024)
		for {
			n, err := p.Read(fd, buf)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if n == 0 {
				break
			}
			got = append(got, append([]byte(nil), buf[:n]...))
		}
		_ = p.Close(fd)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("read %d frames, want 10", len(got))
	}
	if fb.CapturedFrames() != 10 {
		t.Fatalf("captured %d", fb.CapturedFrames())
	}
	// Frames carry distinct sequence markers.
	if got[0][0] == got[1][0] {
		t.Fatal("frames not distinct")
	}
}

func TestFramebufferPacing(t *testing.T) {
	k := newK()
	NewFramebuffer(k, FBParams{Path: "/dev/fb1", FrameBytes: 64, FPS: 10, Frames: 5})
	var times []sim.Time
	k.Spawn("reader", func(p *kernel.Proc) {
		fd, _ := p.Open("/dev/fb1", kernel.ORdOnly)
		buf := make([]byte, 64)
		for {
			n, _ := p.Read(fd, buf)
			if n == 0 {
				break
			}
			times = append(times, p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 5 {
		t.Fatalf("frames = %d", len(times))
	}
	for i := 1; i < len(times); i++ {
		gap := times[i].Sub(times[i-1])
		if gap < 90*sim.Millisecond || gap > 130*sim.Millisecond {
			t.Fatalf("frame gap %v, want ~100ms", gap)
		}
	}
}

func TestFramebufferDropsWhenUnread(t *testing.T) {
	k := newK()
	fb := NewFramebuffer(k, FBParams{Path: "/dev/fb2", FrameBytes: 64, FPS: 100, Frames: 50, BufFrames: 4})
	k.Spawn("late", func(p *kernel.Proc) {
		p.SleepFor(2 * sim.Second) // let the buffer overflow
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fb.Dropped() == 0 {
		t.Fatal("no frames dropped despite tiny buffer")
	}
}
