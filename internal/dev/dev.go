// Package dev provides the character special devices the paper's
// applications splice to and from: rate-paced output DACs (the audio
// and video converters of the §4 movie-player example), a framebuffer
// that captures frames at a fixed rate (the framebuffer-to-socket
// splice of §5.1), and a null device.
//
// Each device implements kernel.FileOps (so it can be opened and used
// with read/write) and, where it makes sense, the splice Sink or Source
// interface — satisfied structurally, so this package does not import
// internal/splice.
package dev

import (
	"kdp/internal/kernel"
	"kdp/internal/sim"
)

// Null is the classic bit bucket: reads return EOF, writes (and splice
// writes) succeed instantly.
type Null struct {
	k       *kernel.Kernel
	written int64
}

// NewNull creates a null device and registers it at /dev/null.
func NewNull(k *kernel.Kernel) *Null {
	n := &Null{k: k}
	k.RegisterDev("/dev/null", func(ctx kernel.Ctx) (kernel.FileOps, error) {
		return n, nil
	})
	return n
}

// BytesWritten reports the total bytes discarded.
func (n *Null) BytesWritten() int64 { return n.written }

// Read implements kernel.FileOps: always EOF.
func (n *Null) Read(ctx kernel.Ctx, p []byte, off int64) (int, error) { return 0, nil }

// Write implements kernel.FileOps: discards.
func (n *Null) Write(ctx kernel.Ctx, p []byte, off int64) (int, error) {
	n.written += int64(len(p))
	return len(p), nil
}

// Size implements kernel.FileOps.
func (n *Null) Size(ctx kernel.Ctx) (int64, error) { return 0, nil }

// Sync implements kernel.FileOps.
func (n *Null) Sync(ctx kernel.Ctx) error { return nil }

// Close implements kernel.FileOps.
func (n *Null) Close(ctx kernel.Ctx) error { return nil }

// SpliceWrite implements the splice Sink interface: data is consumed
// immediately.
func (n *Null) SpliceWrite(data []byte, done func(error)) {
	n.written += int64(len(data))
	done(nil)
}

// DACParams configures a rate-paced output converter.
type DACParams struct {
	// Path is the device special file name (e.g. "/dev/speaker").
	Path string
	// Rate is the playback consumption rate in bytes per second: a
	// Sun-style 8kHz u-law audio DAC consumes 8000 B/s; a video DAC
	// consumes frames at its maximum display rate.
	Rate float64
	// BufBytes is the device's staging buffer. Writers sleep when it
	// is full (splice writers are throttled by the done callback
	// instead, which is exactly the descriptor's flow control).
	BufBytes int
	// Capture keeps everything played for inspection by tests and
	// examples.
	Capture bool
}

// dacEntry is one queued chunk and its completion callback.
type dacEntry struct {
	n    int
	data []byte
	done func(error)
}

// DAC is a rate-paced output character device: bytes written to it
// drain at the configured playback rate, emulating the audio/video
// D-to-A converters of the paper's example. "The program assumes the
// audio DAC driver converts and delivers audio at the appropriate
// playback rate" (§4).
type DAC struct {
	k        *kernel.Kernel
	p        DACParams
	queued   int
	queue    []dacEntry
	draining bool
	closed   bool

	played    int64
	captured  []byte
	lastDrain sim.Time
	underruns int64
}

// NewDAC creates the device and registers its special file.
func NewDAC(k *kernel.Kernel, p DACParams) *DAC {
	if p.Rate <= 0 {
		panic("dev: DAC needs a positive rate")
	}
	if p.BufBytes <= 0 {
		p.BufBytes = 64 << 10
	}
	d := &DAC{k: k, p: p}
	k.RegisterDev(p.Path, func(ctx kernel.Ctx) (kernel.FileOps, error) {
		return d, nil
	})
	return d
}

// Played reports the total bytes converted so far.
func (d *DAC) Played() int64 { return d.played }

// Captured returns the played bytes (only if Capture was set).
func (d *DAC) Captured() []byte { return d.captured }

// Underruns counts drain gaps: times the device went idle with a
// consumer expecting continuous output.
func (d *DAC) Underruns() int64 { return d.underruns }

// QueuedBytes reports bytes sitting in the device buffer.
func (d *DAC) QueuedBytes() int { return d.queued }

// enqueue admits a chunk and starts the drain engine.
func (d *DAC) enqueue(data []byte, capture bool, done func(error)) {
	e := dacEntry{n: len(data), done: done}
	if capture && d.p.Capture {
		e.data = append([]byte(nil), data...)
	}
	d.queued += e.n
	d.queue = append(d.queue, e)
	if !d.draining {
		d.draining = true
		d.k.Hold()
		if d.lastDrain != 0 && d.k.Now() > d.lastDrain {
			d.underruns++
		}
		d.drainNext()
	}
}

// drainNext consumes the head entry at the playback rate, then fires
// its completion at interrupt level.
func (d *DAC) drainNext() {
	if len(d.queue) == 0 {
		d.draining = false
		d.lastDrain = d.k.Now()
		d.k.Release()
		return
	}
	e := d.queue[0]
	d.queue = d.queue[1:]
	d.k.Engine().Schedule(sim.BytesAt(int64(e.n), d.p.Rate), "dac:"+d.p.Path, func() {
		d.queued -= e.n
		d.played += int64(e.n)
		if e.data != nil {
			d.captured = append(d.captured, e.data...)
		}
		d.k.Interrupt(func() {
			if e.done != nil {
				e.done(nil)
			}
			d.k.Wakeup(d) // writers waiting for buffer space
		})
		d.drainNext()
	})
}

// Read implements kernel.FileOps: output-only device.
func (d *DAC) Read(ctx kernel.Ctx, p []byte, off int64) (int, error) {
	return 0, kernel.ErrOpNotSupp
}

// Write implements kernel.FileOps: data is staged in the device buffer
// (sleeping while full) and drains at the playback rate. The write
// returns once the data is accepted, like a real audio device.
func (d *DAC) Write(ctx kernel.Ctx, p []byte, off int64) (int, error) {
	if d.closed {
		return 0, kernel.ErrBadFD
	}
	for d.queued+len(p) > d.p.BufBytes && d.queued > 0 {
		if !ctx.CanSleep() {
			break // interrupt-level writers ride the flow control
		}
		if err := ctx.Sleep(d, kernel.PSOCK); err != nil {
			return 0, err
		}
	}
	d.enqueue(p, true, nil)
	return len(p), nil
}

// Size implements kernel.FileOps.
func (d *DAC) Size(ctx kernel.Ctx) (int64, error) { return 0, nil }

// Sync implements kernel.FileOps: waits for the buffer to drain.
func (d *DAC) Sync(ctx kernel.Ctx) error {
	for d.queued > 0 {
		if err := ctx.Sleep(d, kernel.PSOCK); err != nil {
			return err
		}
	}
	return nil
}

// Close implements kernel.FileOps.
func (d *DAC) Close(ctx kernel.Ctx) error {
	d.closed = true
	return nil
}

// SpliceWrite implements the splice Sink interface. The done callback
// fires when the chunk has been played, which throttles the splice to
// the playback rate via the descriptor's pending-write watermark.
func (d *DAC) SpliceWrite(data []byte, done func(error)) {
	if d.closed {
		done(kernel.ErrBadFD)
		return
	}
	d.enqueue(data, true, done)
}
