package dev

import (
	"bytes"
	"testing"

	"kdp/internal/kernel"
	"kdp/internal/sim"
)

func TestPipeReadWriteRoundTrip(t *testing.T) {
	k := newK()
	p := NewPipe(k, "/dev/pipe0", 4096)
	msg := []byte("through the pipe")
	var got []byte
	k.Spawn("reader", func(pr *kernel.Proc) {
		fd, err := pr.Open("/dev/pipe0", kernel.ORdOnly)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		buf := make([]byte, 64)
		n, err := pr.Read(fd, buf)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		got = append([]byte(nil), buf[:n]...)
	})
	k.Spawn("writer", func(pw *kernel.Proc) {
		pw.SleepFor(10 * sim.Millisecond)
		fd, _ := pw.Open("/dev/pipe0", kernel.OWrOnly)
		if _, err := pw.Write(fd, msg); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
	if in, out := p.Transferred(); in != int64(len(msg)) || out != int64(len(msg)) {
		t.Fatalf("counters in=%d out=%d", in, out)
	}
}

func TestPipeBackpressureBlocksWriter(t *testing.T) {
	k := newK()
	NewPipe(k, "/dev/pipe1", 1000)
	var writerDone, readerStart sim.Time
	k.Spawn("writer", func(pw *kernel.Proc) {
		fd, _ := pw.Open("/dev/pipe1", kernel.OWrOnly)
		// 3KB into a 1KB pipe: must block until the reader drains.
		if _, err := pw.Write(fd, make([]byte, 3000)); err != nil {
			t.Errorf("write: %v", err)
		}
		writerDone = pw.Now()
	})
	k.Spawn("reader", func(pr *kernel.Proc) {
		pr.SleepFor(100 * sim.Millisecond)
		readerStart = pr.Now()
		fd, _ := pr.Open("/dev/pipe1", kernel.ORdOnly)
		buf := make([]byte, 500)
		total := 0
		for total < 3000 {
			n, err := pr.Read(fd, buf)
			if err != nil || n == 0 {
				break
			}
			total += n
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if writerDone < readerStart {
		t.Fatalf("writer finished at %v before reader drained (start %v)", writerDone, readerStart)
	}
}

func TestPipeEOFAfterCloseWrite(t *testing.T) {
	k := newK()
	p := NewPipe(k, "/dev/pipe2", 4096)
	sawEOF := false
	k.Spawn("reader", func(pr *kernel.Proc) {
		fd, _ := pr.Open("/dev/pipe2", kernel.ORdOnly)
		buf := make([]byte, 64)
		for {
			n, err := pr.Read(fd, buf)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if n == 0 {
				sawEOF = true
				return
			}
		}
	})
	k.Spawn("writer", func(pw *kernel.Proc) {
		fd, _ := pw.Open("/dev/pipe2", kernel.OWrOnly)
		_, _ = pw.Write(fd, []byte("tail"))
		_ = pw.Close(fd)
		_ = p
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawEOF {
		t.Fatal("reader never saw EOF")
	}
}

func TestPipeSpliceEndpointsDirect(t *testing.T) {
	// Drive the splice-facing interfaces directly: SpliceWrite admits
	// with backpressure; SpliceRead delivers on arrival.
	k := newK()
	p := NewPipe(k, "", 1024)
	var delivered []byte
	p.SpliceRead(4096, func(data []byte, eof bool, err error) {
		delivered = append([]byte(nil), data...)
	})
	doneCalled := false
	k.Spawn("idle", func(pr *kernel.Proc) { pr.SleepFor(50 * sim.Millisecond) })
	k.Engine().Schedule(sim.Millisecond, "w", func() {
		p.SpliceWrite([]byte("abc"), func(err error) { doneCalled = true })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !doneCalled || string(delivered) != "abc" {
		t.Fatalf("done=%v delivered=%q", doneCalled, delivered)
	}
}
