package kdp_test

import (
	"fmt"

	"kdp"
)

// ExampleSplice copies a file between two disks with one system call,
// entirely inside the simulated kernel. The simulation is deterministic,
// so the output is stable.
func ExampleSplice() {
	m := kdp.New(kdp.Config{
		Disks: []kdp.DiskSpec{
			{Mount: "/d0", Kind: kdp.DiskRAM},
			{Mount: "/d1", Kind: kdp.DiskRAM},
		},
	})
	m.Spawn("copy", func(p *kdp.Proc) {
		fd, _ := p.Open("/d0/data", kdp.OCreat|kdp.OWrOnly)
		for i := 0; i < 4; i++ {
			_, _ = p.Write(fd, make([]byte, kdp.BlockSize))
		}
		_ = p.Close(fd)

		src, _ := p.Open("/d0/data", kdp.ORdOnly)
		dst, _ := p.Open("/d1/copy", kdp.OCreat|kdp.OWrOnly)
		n, err := kdp.Splice(p, src, dst, kdp.SpliceEOF)
		fmt.Printf("spliced %d bytes, err=%v\n", n, err)
	})
	if err := m.Run(); err != nil {
		fmt.Println("run:", err)
	}
	// Output:
	// spliced 32768 bytes, err=<nil>
}

// ExampleMachine_AddDAC plays a file to a rate-paced audio device, the
// paper's §4 scenario, using the asynchronous FASYNC + SIGIO interface.
func ExampleMachine_AddDAC() {
	m := kdp.New(kdp.Config{
		Disks: []kdp.DiskSpec{{Mount: "/d", Kind: kdp.DiskRAM}},
	})
	dac := m.AddDAC(kdp.DACConfig{Path: "/dev/speaker", Rate: 64 << 10})
	m.Spawn("player", func(p *kdp.Proc) {
		fd, _ := p.Open("/d/audio", kdp.OCreat|kdp.OWrOnly)
		_, _ = p.Write(fd, make([]byte, kdp.BlockSize))
		_ = p.Close(fd)

		src, _ := p.Open("/d/audio", kdp.ORdOnly)
		snd, _ := p.Open("/dev/speaker", kdp.OWrOnly)
		_, _ = p.Fcntl(src, kdp.FSetFL, kdp.FAsync)
		done := false
		p.SetSignalHandler(kdp.SIGIO, func(*kdp.Proc, kdp.Signal) { done = true })
		_, _ = kdp.Splice(p, src, snd, kdp.SpliceEOF) // returns immediately
		for !done {
			p.Pause()
		}
		fmt.Printf("played %d bytes at %v\n", dac.Played(), p.Now())
	})
	_ = m.Run()
	// Output:
	// played 8192 bytes at 0.135175s
}
