// Command mdlinkcheck verifies that every relative link in the repo's
// markdown files points at a file that exists. It walks the tree given
// as its argument (default "."), extracts [text](target) links, and
// resolves each relative target against the linking file's directory.
// External URLs (with a scheme) and pure in-page anchors (#...) are
// skipped; a "path#anchor" target is checked for the path part only.
//
// Exit status is nonzero if any link is dead, so `make linkcheck` can
// gate CI on documentation staying consistent with the tree.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links. Reference-style links and
// autolinks are rare in this repo and not checked.
var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	dead := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Don't descend into VCS metadata.
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		dead += checkFile(path)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdlinkcheck:", err)
		os.Exit(2)
	}
	if dead > 0 {
		fmt.Fprintf(os.Stderr, "mdlinkcheck: %d dead link(s)\n", dead)
		os.Exit(1)
	}
}

// checkFile reports the number of dead relative links in one file,
// printing each.
func checkFile(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdlinkcheck: %s: %v\n", path, err)
		return 1
	}
	dead := 0
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if !relative(target) {
				continue
			}
			if hash := strings.IndexByte(target, '#'); hash >= 0 {
				target = target[:hash]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				fmt.Printf("%s:%d: dead link %s (%s)\n", path, i+1, m[1], resolved)
				dead++
			}
		}
	}
	return dead
}

// relative reports whether a link target is a relative file path (as
// opposed to an external URL, an in-page anchor, or an absolute path
// outside the repo's control).
func relative(target string) bool {
	if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
		return false
	}
	if strings.HasPrefix(target, "#") || strings.HasPrefix(target, "/") {
		return false
	}
	return true
}
