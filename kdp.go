// Package kdp — Kernel Data Paths — is a deterministic, virtual-time
// reproduction of the system described in Fall & Pasquale, "Exploiting
// In-Kernel Data Paths to Improve I/O Throughput and CPU Availability"
// (USENIX Winter 1993): a UNIX kernel mechanism, splice(), that
// establishes fast in-kernel data pathways between I/O objects named by
// file descriptors, moving data asynchronously and without user-process
// intervention.
//
// The package simulates a 1992-class workstation (DecStation 5000/200
// class) in virtual time: a kernel with processes, a priority scheduler
// and the callout list; a 4.2BSD buffer cache; an FFS-style filesystem;
// mechanical SCSI disk models (DEC RZ56 and RZ58) and a RAM disk;
// datagram sockets over a simulated Ethernet; and character devices
// (DACs, a framebuffer). On top of that substrate, Splice implements
// the paper's mechanism exactly: per-file physical block tables built
// by successive bmap() calls, asynchronous reads with B_CALL completion
// handlers, write-side dispatch through the callout list, memory-less
// write headers that alias the read buffer's data area, and rate-based
// flow control with the paper's 3/5/5 watermarks.
//
// A machine is built with New, populated with processes via Spawn, and
// driven to completion with Run; everything inside runs determinstically
// in virtual time:
//
//	m := kdp.New(kdp.Config{
//		Disks: []kdp.DiskSpec{
//			{Mount: "/d0", Kind: kdp.DiskRZ58},
//			{Mount: "/d1", Kind: kdp.DiskRZ58},
//		},
//	})
//	m.Spawn("copy", func(p *kdp.Proc) {
//		src, _ := p.Open("/d0/movie", kdp.ORdOnly)
//		dst, _ := p.Open("/d1/copy", kdp.OCreat|kdp.OWrOnly)
//		n, _ := kdp.Splice(p, src, dst, kdp.SpliceEOF)
//		_ = n
//	})
//	if err := m.Run(); err != nil { ... }
package kdp

import (
	"fmt"

	"kdp/internal/buf"
	"kdp/internal/dev"
	"kdp/internal/disk"
	"kdp/internal/fs"
	"kdp/internal/kernel"
	"kdp/internal/server"
	"kdp/internal/sim"
	"kdp/internal/socket"
	"kdp/internal/splice"
	"kdp/internal/stream"
	"kdp/internal/vm"
)

// Re-exported core types. Proc is the simulated process handle passed
// to every process body; its methods are the system-call interface
// (Open, Read, Write, Lseek, Fcntl, Fsync, Close, Pause, SetITimer,
// Compute, Mmap, Munmap, Msync, ...).
type (
	// Proc is a simulated process.
	Proc = kernel.Proc
	// Signal is a UNIX-style signal number.
	Signal = kernel.Signal
	// Duration is a span of virtual time in nanoseconds.
	Duration = sim.Duration
	// Time is a point in virtual time.
	Time = sim.Time
	// SpliceOptions tunes splice flow control (zero value = the
	// paper's defaults: watermarks 3 and 5, refill batch 5).
	SpliceOptions = splice.Options
	// SpliceHandle observes an asynchronous splice.
	SpliceHandle = splice.Handle
	// SpliceStats counts one splice's activity.
	SpliceStats = splice.Stats
)

// Virtual-time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Open flags, fcntl commands and whence values (see the kernel
// package).
const (
	ORdOnly = kernel.ORdOnly
	OWrOnly = kernel.OWrOnly
	ORdWr   = kernel.ORdWr
	OCreat  = kernel.OCreat
	OTrunc  = kernel.OTrunc
	OAppend = kernel.OAppend

	FSetFL = kernel.FSetFL
	FGetFL = kernel.FGetFL
	FAsync = kernel.FAsync

	SeekSet = kernel.SeekSet
	SeekCur = kernel.SeekCur
	SeekEnd = kernel.SeekEnd
)

// Mmap protection and mapping-type flags (see Proc.Mmap; the VM
// subsystem is docs/VM.md).
const (
	ProtRead   = kernel.ProtRead
	ProtWrite  = kernel.ProtWrite
	MapShared  = kernel.MapShared
	MapPrivate = kernel.MapPrivate
)

// Signals.
const (
	SIGIO   = kernel.SIGIO
	SIGALRM = kernel.SIGALRM
)

// Sleep priorities (for Proc.Sleep; values above PZero are
// signal-interruptible).
const (
	PZero = kernel.PZERO
	PWait = kernel.PWAIT
	PSlep = kernel.PSLEP
)

// SpliceEOF requests a splice until end of file (the paper's
// SPLICE_EOF).
const SpliceEOF = splice.EOF

// Common errors.
var (
	ErrNoEnt       = kernel.ErrNoEnt
	ErrBadFD       = kernel.ErrBadFD
	ErrInval       = kernel.ErrInval
	ErrExist       = kernel.ErrExist
	ErrIntr        = kernel.ErrIntr
	ErrNoSpace     = kernel.ErrNoSpace
	ErrConnRefused = kernel.ErrConnRefused
	ErrTimedOut    = kernel.ErrTimedOut
	ErrNoMem       = kernel.ErrNoMem
)

// DiskKind selects a device model.
type DiskKind int

// The three device types measured in the paper.
const (
	DiskRAM DiskKind = iota
	DiskRZ58
	DiskRZ56
)

// DiskSpec describes one disk with a freshly formatted filesystem,
// mounted at Mount.
type DiskSpec struct {
	Mount string
	Kind  DiskKind
	// MB is the disk capacity in megabytes (default 16, the paper's
	// RAM disk size).
	MB int
	// Interleave overrides the FFS allocation stride; 0 selects 2 for
	// mechanical disks and 1 (dense) for the RAM disk.
	Interleave int
}

// Config describes a machine.
type Config struct {
	// Disks lists the block devices (each formatted and mounted).
	Disks []DiskSpec
	// CacheMB sizes the buffer cache in megabytes (default 3.2MB, the
	// measured system's cache — stored as 8KB buffers).
	CacheMB float64
	// Seed makes the machine's PRNG deterministic (default 1).
	Seed uint64
	// MaxRunTime aborts runaway simulations; zero means unlimited.
	MaxRunTime Duration
	// VMPages sizes the page pool backing mmap'd file I/O in
	// block-size pages (default 256 = 2MB; negative disables the VM
	// subsystem, making Mmap fail as a kernel built without VM would).
	VMPages int
}

// BlockSize is the filesystem and buffer-cache block size.
const BlockSize = 8192

// Machine is a booted simulated workstation.
type Machine struct {
	k     *kernel.Kernel
	cache *buf.Cache
	disks []*disk.Disk
	fss   []*fs.FS
	pool  *vm.Pool
	specs []DiskSpec
}

// New builds a machine: devices are created and formatted, and the
// filesystems are mounted by a short-lived init process.
func New(cfg Config) *Machine {
	kcfg := kernel.DefaultConfig()
	if cfg.Seed != 0 {
		kcfg.Seed = cfg.Seed
	}
	kcfg.MaxRunTime = cfg.MaxRunTime
	k := kernel.New(kcfg)

	cacheMB := cfg.CacheMB
	if cacheMB <= 0 {
		cacheMB = 3.2
	}
	nbuf := int(cacheMB * 1024 * 1024 / BlockSize)
	m := &Machine{k: k, cache: buf.NewCache(k, nbuf, BlockSize), specs: cfg.Disks}

	if cfg.VMPages >= 0 {
		pages := cfg.VMPages
		if pages == 0 {
			pages = 256
		}
		m.pool = vm.NewPool(k, pages, BlockSize)
		k.SetVM(m.pool)
	}

	for i, spec := range cfg.Disks {
		mb := spec.MB
		if mb <= 0 {
			mb = 16
		}
		blocks := int64(mb) << 20 / BlockSize
		var p disk.Params
		switch spec.Kind {
		case DiskRAM:
			p = disk.RAMDisk(blocks, BlockSize)
		case DiskRZ58:
			p = disk.RZ58(blocks, BlockSize)
		case DiskRZ56:
			p = disk.RZ56(blocks, BlockSize)
		default:
			panic(fmt.Sprintf("kdp: unknown disk kind %d", spec.Kind))
		}
		// Device names must be unique per machine: the VM keys mapped
		// objects by (device name, inode), and traces/metrics are
		// per-device.
		p.Name = fmt.Sprintf("%s-%d", p.Name, i)
		d := disk.New(k, p)
		d.SetCache(m.cache)
		if _, err := fs.Mkfs(d, 256); err != nil {
			panic("kdp: mkfs: " + err.Error())
		}
		m.disks = append(m.disks, d)
	}

	// Mount everything from an init process before user processes run.
	m.fss = make([]*fs.FS, len(m.disks))
	if len(m.disks) > 0 {
		k.Spawn("init", func(p *kernel.Proc) {
			for i, d := range m.disks {
				f, err := fs.Mount(p.Ctx(), m.cache, d)
				if err != nil {
					panic("kdp: mount: " + err.Error())
				}
				il := m.specs[i].Interleave
				if il == 0 {
					il = 2
					if m.specs[i].Kind == DiskRAM {
						il = 1
					}
				}
				f.SetInterleave(il)
				if m.pool != nil {
					f.SetPager(m.pool)
				}
				m.fss[i] = f
				k.Mount(m.specs[i].Mount, f)
			}
		})
		if err := k.Run(); err != nil {
			panic("kdp: boot: " + err.Error())
		}
	}
	return m
}

// Spawn adds a process to the machine; it runs when Run is called.
func (m *Machine) Spawn(name string, body func(*Proc)) *Proc {
	return m.k.Spawn(name, body)
}

// Run drives the machine until every process has exited and all
// in-kernel work (async splices, device queues) has drained.
func (m *Machine) Run() error { return m.k.Run() }

// Now returns the machine's virtual time.
func (m *Machine) Now() Time { return m.k.Now() }

// Kernel exposes the underlying kernel (stats, tracing, advanced use).
func (m *Machine) Kernel() *kernel.Kernel { return m.k }

// BufferCache exposes the machine's buffer cache.
func (m *Machine) BufferCache() *buf.Cache { return m.cache }

// Disk returns the i'th configured disk.
func (m *Machine) Disk(i int) *disk.Disk { return m.disks[i] }

// FS returns the filesystem mounted from the i'th disk.
func (m *Machine) FS(i int) *fs.FS { return m.fss[i] }

// VMPool exposes the machine's page pool (nil when Config.VMPages is
// negative).
func (m *Machine) VMPool() *vm.Pool { return m.pool }

// ColdCaches flushes and invalidates every cached disk block, giving
// the cold-start condition the paper's measurements require. Must be
// called from process context.
func (m *Machine) ColdCaches(p *Proc) error {
	for _, d := range m.disks {
		if err := m.cache.InvalidateDev(p.Ctx(), d); err != nil {
			return err
		}
	}
	return nil
}

// Splice is the paper's system call: move size bytes (or SpliceEOF for
// the rest of the source) between the objects open on srcFD and dstFD
// entirely inside the kernel. With FASYNC set on either descriptor the
// call returns immediately and SIGIO announces completion; otherwise it
// blocks and returns the count moved.
func Splice(p *Proc, srcFD, dstFD int, size int64) (int64, error) {
	return splice.Splice(p, srcFD, dstFD, size)
}

// SpliceWithOptions is Splice with explicit flow-control options and an
// observation handle.
func SpliceWithOptions(p *Proc, srcFD, dstFD int, size int64, o SpliceOptions) (int64, *SpliceHandle, error) {
	return splice.SpliceOpts(p, srcFD, dstFD, size, o)
}

// ---- device and network helpers ----

// DACConfig configures a rate-paced output device (audio or video DAC).
type DACConfig struct {
	Path     string  // device special file, e.g. "/dev/speaker"
	Rate     float64 // playback rate in bytes per second
	BufBytes int     // device staging buffer (default 64KB)
	Capture  bool    // retain played bytes for inspection
}

// AddDAC attaches a rate-paced output DAC and registers its device
// file.
func (m *Machine) AddDAC(cfg DACConfig) *dev.DAC {
	return dev.NewDAC(m.k, dev.DACParams{
		Path: cfg.Path, Rate: cfg.Rate, BufBytes: cfg.BufBytes, Capture: cfg.Capture,
	})
}

// AddNull attaches /dev/null.
func (m *Machine) AddNull() *dev.Null { return dev.NewNull(m.k) }

// FramebufferConfig configures a frame-capture device.
type FramebufferConfig struct {
	Path       string
	FrameBytes int
	FPS        float64
	Frames     int // 0 = unbounded
}

// AddFramebuffer attaches a frame source (for framebuffer-to-socket
// splices).
func (m *Machine) AddFramebuffer(cfg FramebufferConfig) *dev.Framebuffer {
	return dev.NewFramebuffer(m.k, dev.FBParams{
		Path: cfg.Path, FrameBytes: cfg.FrameBytes, FPS: cfg.FPS, Frames: cfg.Frames,
	})
}

// AddPipe attaches an in-kernel pipe (bounded byte queue) that works as
// both a splice source and sink, so spliced pathways can be chained
// (file → pipe → socket). capacity 0 selects 64KB. path may be empty
// for an anonymous pipe (use InstallFile on the returned object).
func (m *Machine) AddPipe(path string, capacity int) *dev.Pipe {
	return dev.NewPipe(m.k, path, capacity)
}

// NetKind selects a network model.
type NetKind int

// Network models.
const (
	NetEthernet10 NetKind = iota // 10Mb/s shared Ethernet
	NetLoopback                  // fast in-machine delivery
)

// AddNet creates a simulated network on the machine.
func (m *Machine) AddNet(kind NetKind) *socket.Net {
	switch kind {
	case NetLoopback:
		return socket.NewNet(m.k, socket.Loopback())
	default:
		return socket.NewNet(m.k, socket.Ethernet10())
	}
}

// ---- stream transport and file-server engine ----

// Re-exported stream/server types. A StreamTransport is a TCP-lite
// endpoint multiplexing reliable connections onto one datagram port;
// connection descriptors returned by its Accept/Connect syscalls are
// ordinary files (Read/Write/Close) and splice endpoints.
type (
	// StreamTransport is a reliable stream endpoint bound to one port.
	StreamTransport = stream.Transport
	// StreamConn is one reliable, flow-controlled stream connection.
	StreamConn = stream.Conn
	// Server is the concurrent file-server engine.
	Server = server.Server
	// ServerConfig configures a file server (see server.Config).
	ServerConfig = server.Config
	// ServerMode selects the serving data path: copy or splice.
	ServerMode = server.Mode
)

// File-server data paths: per-request read/write copying through user
// space, or a single in-kernel splice per request.
const (
	ServeCopy   = server.ModeCopy
	ServeSplice = server.ModeSplice
)

// AddStreamTransport binds a reliable stream-transport endpoint to
// port on net. Its Listen/Accept/Connect methods are kernel syscalls
// (call them from process context).
func (m *Machine) AddStreamTransport(net *socket.Net, port int) (*StreamTransport, error) {
	return stream.NewTransport(m.k, net, port)
}

// StartServer launches the concurrent file-server engine: an accept
// loop that hands each connection to a spawned handler process.
func (m *Machine) StartServer(cfg ServerConfig) *Server {
	return server.Start(m.k, cfg)
}
