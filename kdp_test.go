package kdp_test

import (
	"bytes"
	"testing"

	"kdp"
)

func twoDiskMachine(kind kdp.DiskKind) *kdp.Machine {
	return kdp.New(kdp.Config{
		Disks: []kdp.DiskSpec{
			{Mount: "/d0", Kind: kind},
			{Mount: "/d1", Kind: kind},
		},
		MaxRunTime: 600 * kdp.Second,
	})
}

func TestFacadeSpliceCopy(t *testing.T) {
	m := twoDiskMachine(kdp.DiskRAM)
	const size = 200000
	want := make([]byte, size)
	for i := range want {
		want[i] = byte(i * 7)
	}
	m.Spawn("main", func(p *kdp.Proc) {
		fd, err := p.Open("/d0/f", kdp.OCreat|kdp.OWrOnly)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		for off := 0; off < size; off += kdp.BlockSize {
			end := off + kdp.BlockSize
			if end > size {
				end = size
			}
			if _, err := p.Write(fd, want[off:end]); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
		_ = p.Close(fd)

		src, _ := p.Open("/d0/f", kdp.ORdOnly)
		dst, _ := p.Open("/d1/f", kdp.OCreat|kdp.OWrOnly)
		n, err := kdp.Splice(p, src, dst, kdp.SpliceEOF)
		if err != nil || n != size {
			t.Errorf("splice: n=%d err=%v", n, err)
			return
		}
		_ = p.Close(src)
		_ = p.Close(dst)

		got := make([]byte, size)
		vfd, _ := p.Open("/d1/f", kdp.ORdOnly)
		for off := 0; off < size; {
			r, err := p.Read(vfd, got[off:])
			if err != nil || r == 0 {
				t.Errorf("verify read: r=%d err=%v", r, err)
				return
			}
			off += r
		}
		if !bytes.Equal(got, want) {
			t.Error("facade splice corrupted data")
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeAsyncSpliceWithHandle(t *testing.T) {
	m := twoDiskMachine(kdp.DiskRZ58)
	const size = 10 * kdp.BlockSize
	m.Spawn("main", func(p *kdp.Proc) {
		fd, _ := p.Open("/d0/f", kdp.OCreat|kdp.OWrOnly)
		chunk := make([]byte, kdp.BlockSize)
		for i := 0; i < 10; i++ {
			_, _ = p.Write(fd, chunk)
		}
		_ = p.Close(fd)
		if err := m.ColdCaches(p); err != nil {
			t.Errorf("cold caches: %v", err)
			return
		}

		src, _ := p.Open("/d0/f", kdp.ORdOnly)
		dst, _ := p.Open("/d1/f", kdp.OCreat|kdp.OWrOnly)
		if _, err := p.Fcntl(src, kdp.FSetFL, kdp.FAsync); err != nil {
			t.Errorf("fcntl: %v", err)
			return
		}
		n, h, err := kdp.SpliceWithOptions(p, src, dst, kdp.SpliceEOF, kdp.SpliceOptions{})
		if err != nil || n != size {
			t.Errorf("async splice: n=%d err=%v", n, err)
			return
		}
		if h.Done() {
			t.Error("mechanical-disk splice finished synchronously")
		}
		if err := h.Wait(p); err != nil {
			t.Errorf("wait: %v", err)
		}
		if h.Moved() != size {
			t.Errorf("moved %d", h.Moved())
		}
		if st := h.Stats(); st.Shared != 10 || st.Callouts != 10 {
			t.Errorf("stats: %+v", st)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDACAndSplice(t *testing.T) {
	m := kdp.New(kdp.Config{
		Disks:      []kdp.DiskSpec{{Mount: "/d", Kind: kdp.DiskRAM}},
		MaxRunTime: 600 * kdp.Second,
	})
	dac := m.AddDAC(kdp.DACConfig{Path: "/dev/out", Rate: 1e6, Capture: true})
	const size = 3 * kdp.BlockSize
	m.Spawn("main", func(p *kdp.Proc) {
		fd, _ := p.Open("/d/audio", kdp.OCreat|kdp.OWrOnly)
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i)
		}
		for off := 0; off < size; off += kdp.BlockSize {
			_, _ = p.Write(fd, data[off:off+kdp.BlockSize])
		}
		_ = p.Close(fd)
		src, _ := p.Open("/d/audio", kdp.ORdOnly)
		snd, err := p.Open("/dev/out", kdp.OWrOnly)
		if err != nil {
			t.Errorf("open dac: %v", err)
			return
		}
		if n, err := kdp.Splice(p, src, snd, kdp.SpliceEOF); err != nil || n != size {
			t.Errorf("splice to DAC: n=%d err=%v", n, err)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if dac.Played() != size {
		t.Fatalf("DAC played %d, want %d", dac.Played(), size)
	}
	cap := dac.Captured()
	for i := range cap {
		if cap[i] != byte(i) {
			t.Fatalf("captured byte %d wrong", i)
		}
	}
}

func TestFacadeNetworkRelay(t *testing.T) {
	m := kdp.New(kdp.Config{
		Disks:      []kdp.DiskSpec{{Mount: "/d", Kind: kdp.DiskRAM}},
		MaxRunTime: 600 * kdp.Second,
	})
	net := m.AddNet(kdp.NetLoopback)
	a, _ := net.NewSocket(1)
	b, _ := net.NewSocket(2)
	c, _ := net.NewSocket(3)
	d, _ := net.NewSocket(4)
	a.Connect(2)
	c.Connect(4)

	const total = 5 * 1000
	var got int
	m.Spawn("recv", func(p *kdp.Proc) {
		fd := p.InstallFile(d, kdp.ORdOnly)
		buf := make([]byte, 4096)
		for got < total {
			n, err := p.Read(fd, buf)
			if err != nil || n == 0 {
				break
			}
			got += n
		}
	})
	m.Spawn("relay", func(p *kdp.Proc) {
		in := p.InstallFile(b, kdp.ORdOnly)
		out := p.InstallFile(c, kdp.OWrOnly)
		if n, err := kdp.Splice(p, in, out, total); err != nil || n != total {
			t.Errorf("relay: n=%d err=%v", n, err)
		}
	})
	m.Spawn("send", func(p *kdp.Proc) {
		fd := p.InstallFile(a, kdp.OWrOnly)
		for i := 0; i < 5; i++ {
			if _, err := p.Write(fd, make([]byte, 1000)); err != nil {
				t.Errorf("send: %v", err)
			}
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got != total {
		t.Fatalf("received %d, want %d", got, total)
	}
}

func TestFacadeFramebuffer(t *testing.T) {
	m := kdp.New(kdp.Config{
		Disks:      []kdp.DiskSpec{{Mount: "/d", Kind: kdp.DiskRAM}},
		MaxRunTime: 600 * kdp.Second,
	})
	fb := m.AddFramebuffer(kdp.FramebufferConfig{
		Path: "/dev/fb", FrameBytes: 512, FPS: 100, Frames: 7,
	})
	null := m.AddNull()
	m.Spawn("main", func(p *kdp.Proc) {
		src, err := p.Open("/dev/fb", kdp.ORdOnly)
		if err != nil {
			t.Errorf("open fb: %v", err)
			return
		}
		dst, _ := p.Open("/dev/null", kdp.OWrOnly)
		n, err := kdp.Splice(p, src, dst, kdp.SpliceEOF)
		if err != nil || n != 7*512 {
			t.Errorf("fb splice: n=%d err=%v", n, err)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if fb.CapturedFrames() != 7 {
		t.Fatalf("captured %d frames", fb.CapturedFrames())
	}
	if null.BytesWritten() != 7*512 {
		t.Fatalf("null got %d bytes", null.BytesWritten())
	}
}

func TestFacadeChainedSpliceThroughPipe(t *testing.T) {
	m := kdp.New(kdp.Config{
		Disks:      []kdp.DiskSpec{{Mount: "/d", Kind: kdp.DiskRAM}},
		MaxRunTime: 600 * kdp.Second,
	})
	pipe := m.AddPipe("/dev/pipe", 16<<10)
	null := m.AddNull()
	const size = 8 * kdp.BlockSize
	m.Spawn("main", func(p *kdp.Proc) {
		fd, _ := p.Open("/d/src", kdp.OCreat|kdp.OWrOnly)
		for i := 0; i < 8; i++ {
			_, _ = p.Write(fd, make([]byte, kdp.BlockSize))
		}
		_ = p.Close(fd)

		src, _ := p.Open("/d/src", kdp.ORdOnly)
		pin, _ := p.Open("/dev/pipe", kdp.OWrOnly)
		pout, _ := p.Open("/dev/pipe", kdp.ORdOnly)
		sink, _ := p.Open("/dev/null", kdp.OWrOnly)
		_, _ = p.Fcntl(pout, kdp.FSetFL, kdp.FAsync)
		_, h, err := kdp.SpliceWithOptions(p, pout, sink, size, kdp.SpliceOptions{})
		if err != nil {
			t.Errorf("drain splice: %v", err)
			return
		}
		if n, err := kdp.Splice(p, src, pin, kdp.SpliceEOF); err != nil || n != size {
			t.Errorf("feed splice: n=%d err=%v", n, err)
			return
		}
		if err := h.Wait(p); err != nil {
			t.Errorf("drain wait: %v", err)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if null.BytesWritten() != size {
		t.Fatalf("chained pipeline delivered %d of %d bytes", null.BytesWritten(), size)
	}
	if in, out := pipe.Transferred(); in != size || out != size {
		t.Fatalf("pipe counters in=%d out=%d", in, out)
	}
}

func TestFacadeDeterminism(t *testing.T) {
	run := func() kdp.Time {
		m := twoDiskMachine(kdp.DiskRZ56)
		m.Spawn("main", func(p *kdp.Proc) {
			fd, _ := p.Open("/d0/f", kdp.OCreat|kdp.OWrOnly)
			for i := 0; i < 32; i++ {
				_, _ = p.Write(fd, make([]byte, kdp.BlockSize))
			}
			_ = p.Close(fd)
			_ = m.ColdCaches(p)
			src, _ := p.Open("/d0/f", kdp.ORdOnly)
			dst, _ := p.Open("/d1/f", kdp.OCreat|kdp.OWrOnly)
			_, _ = kdp.Splice(p, src, dst, kdp.SpliceEOF)
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("two identical machines diverged: %v vs %v", a, b)
	}
}

func TestFacadeStatAndRename(t *testing.T) {
	m := twoDiskMachine(kdp.DiskRAM)
	m.Spawn("main", func(p *kdp.Proc) {
		fd, _ := p.Open("/d0/f", kdp.OCreat|kdp.OWrOnly)
		_, _ = p.Write(fd, make([]byte, 5000))
		_ = p.Close(fd)
		info, err := p.Stat("/d0/f")
		if err != nil || info.Size != 5000 || info.IsDir {
			t.Errorf("stat: %+v err=%v", info, err)
		}
		if err := p.Rename("/d0/f", "/d0/g"); err != nil {
			t.Errorf("rename: %v", err)
		}
		if _, err := p.Stat("/d0/f"); err != kdp.ErrNoEnt {
			t.Errorf("stat old name: %v", err)
		}
		if info, err := p.Stat("/d0/g"); err != nil || info.Size != 5000 {
			t.Errorf("stat new name: %+v err=%v", info, err)
		}
		// Cross-device rename is EXDEV-style invalid.
		if err := p.Rename("/d0/g", "/d1/g"); err != kdp.ErrInval {
			t.Errorf("cross-device rename: %v", err)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeStatsAccessors(t *testing.T) {
	m := twoDiskMachine(kdp.DiskRAM)
	m.Spawn("main", func(p *kdp.Proc) {
		fd, _ := p.Open("/d0/f", kdp.OCreat|kdp.OWrOnly)
		_, _ = p.Write(fd, make([]byte, kdp.BlockSize))
		_ = p.Close(fd)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// 3.2MB of 8KB buffers = 409 (truncated), the measured system's cache.
	if m.BufferCache().NumBuffers() != 409 {
		t.Fatalf("cache buffers = %d", m.BufferCache().NumBuffers())
	}
	if m.Disk(0).Stats().Writes == 0 && m.BufferCache().Stats().DelayedWrites == 0 {
		t.Fatal("no write activity recorded anywhere")
	}
	if m.FS(0) == nil || m.Kernel() == nil {
		t.Fatal("accessors returned nil")
	}
}

func TestFacadeMmap(t *testing.T) {
	m := twoDiskMachine(kdp.DiskRAM)
	const size = 3 * kdp.BlockSize
	want := make([]byte, size)
	for i := range want {
		want[i] = byte(i*13 + 5)
	}
	m.Spawn("main", func(p *kdp.Proc) {
		// Store through a shared writable mapping, msync, unmap.
		fd, err := p.Open("/d0/f", kdp.OCreat|kdp.ORdWr)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		addr, err := p.Mmap(fd, 0, size, kdp.ProtRead|kdp.ProtWrite, kdp.MapShared)
		if err != nil {
			t.Errorf("mmap: %v", err)
			return
		}
		_ = p.Close(fd) // the mapping outlives the descriptor
		if err := p.MemWrite(addr, want); err != nil {
			t.Errorf("memwrite: %v", err)
			return
		}
		if err := p.Msync(addr); err != nil {
			t.Errorf("msync: %v", err)
			return
		}
		if err := p.Munmap(addr); err != nil {
			t.Errorf("munmap: %v", err)
			return
		}

		// The stores must be visible to plain read().
		got := make([]byte, size)
		rfd, _ := p.Open("/d0/f", kdp.ORdOnly)
		for off := 0; off < size; {
			r, err := p.Read(rfd, got[off:])
			if err != nil || r == 0 {
				t.Errorf("read: r=%d err=%v", r, err)
				return
			}
			off += r
		}
		_ = p.Close(rfd)
		if !bytes.Equal(got, want) {
			t.Error("mmap stores not visible through read()")
		}

		// And to a read-only mapping on the second volume after a copy.
		rfd, _ = p.Open("/d0/f", kdp.ORdOnly)
		raddr, err := p.Mmap(rfd, 0, size, kdp.ProtRead, kdp.MapShared)
		if err != nil {
			t.Errorf("mmap ro: %v", err)
			return
		}
		_ = p.Close(rfd)
		back := make([]byte, size)
		if err := p.MemRead(raddr, back); err != nil {
			t.Errorf("memread: %v", err)
			return
		}
		_ = p.Munmap(raddr)
		if !bytes.Equal(back, want) {
			t.Error("mmap read differs from written data")
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.VMPool() == nil {
		t.Fatal("VMPool accessor returned nil on a default machine")
	}
	if m.VMPool().Resident() != 0 {
		t.Fatalf("%d pages resident after all mappings unmapped", m.VMPool().Resident())
	}
}

func TestFacadeVMDisabled(t *testing.T) {
	m := kdp.New(kdp.Config{
		Disks:      []kdp.DiskSpec{{Mount: "/d0", Kind: kdp.DiskRAM}},
		VMPages:    -1,
		MaxRunTime: 60 * kdp.Second,
	})
	m.Spawn("main", func(p *kdp.Proc) {
		fd, _ := p.Open("/d0/f", kdp.OCreat|kdp.ORdWr)
		if _, err := p.Mmap(fd, 0, kdp.BlockSize, kdp.ProtRead, kdp.MapShared); err == nil {
			t.Error("mmap succeeded on a machine built without VM")
		}
		_ = p.Close(fd)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.VMPool() != nil {
		t.Fatal("VMPool non-nil with VMPages < 0")
	}
}
