package kdp_test

import (
	"testing"

	"kdp"
)

func TestFacadeDisklessMachine(t *testing.T) {
	m := kdp.New(kdp.Config{MaxRunTime: 10 * kdp.Second})
	null := m.AddNull()
	ran := false
	m.Spawn("main", func(p *kdp.Proc) {
		fd, err := p.Open("/dev/null", kdp.OWrOnly)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if _, err := p.Write(fd, make([]byte, 100)); err != nil {
			t.Errorf("write: %v", err)
		}
		ran = true
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran || null.BytesWritten() != 100 {
		t.Fatalf("diskless machine: ran=%v null=%d", ran, null.BytesWritten())
	}
}
