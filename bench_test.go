// Benchmarks regenerating the paper's evaluation. Each Benchmark runs
// the corresponding experiment in virtual time and reports the paper's
// metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces every table row (see EXPERIMENTS.md for paper-vs-measured
// values):
//
//	BenchmarkTable1*  — CPU availability factors (paper Table 1)
//	BenchmarkTable2*  — copy throughput, KB/s (paper Table 2)
//	BenchmarkAblation* — the design-choice sweeps from DESIGN.md
package kdp_test

import (
	"testing"

	"kdp/internal/bench"
	"kdp/internal/splice"
	"kdp/internal/workload"
)

// ---- Table 1: CPU availability factors, copying an 8MB file ----

func benchTable1(b *testing.B, kind bench.DiskKind) {
	b.ReportAllocs()
	var row bench.Table1Row
	for i := 0; i < b.N; i++ {
		rows := bench.Table1([]bench.DiskKind{kind})
		row = rows[0]
	}
	b.ReportMetric(row.Fcp, "F_cp")
	b.ReportMetric(row.Fscp, "F_scp")
	b.ReportMetric(row.Improvement, "improvement")
}

func BenchmarkTable1RAM(b *testing.B)  { benchTable1(b, bench.RAM) }
func BenchmarkTable1RZ58(b *testing.B) { benchTable1(b, bench.RZ58) }
func BenchmarkTable1RZ56(b *testing.B) { benchTable1(b, bench.RZ56) }

// ---- Table 2: mean throughput, copying an 8MB file ----

func benchTable2(b *testing.B, kind bench.DiskKind) {
	b.ReportAllocs()
	var row bench.Table2Row
	for i := 0; i < b.N; i++ {
		rows := bench.Table2([]bench.DiskKind{kind})
		row = rows[0]
	}
	b.ReportMetric(row.SCPKBs, "scp_KB/s")
	b.ReportMetric(row.CPKBs, "cp_KB/s")
	b.ReportMetric(row.PctImprove, "improve_%")
}

func BenchmarkTable2RAM(b *testing.B)  { benchTable2(b, bench.RAM) }
func BenchmarkTable2RZ58(b *testing.B) { benchTable2(b, bench.RZ58) }
func BenchmarkTable2RZ56(b *testing.B) { benchTable2(b, bench.RZ56) }

// ---- Ablation A: transfer-quantum sweep (the §4 size parameter) ----

func BenchmarkAblationQuantum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out, err := bench.RunSweep("quantum", nil); err != nil || out == "" {
			b.Fatal(err)
		}
	}
}

// ---- Ablation B: flow-control watermark sweep (§5.5) ----

func BenchmarkAblationWatermark(b *testing.B) {
	var def, low float64
	for i := 0; i < b.N; i++ {
		s := bench.DefaultSetup(bench.RAM)
		defRes := bench.MeasureThroughput(s, workload.CopySplice)
		def = defRes.ThroughputKBs()
		lowSpec := workload.DefaultCopySpec("/src/bigfile", "/dst/copy", workload.CopySplice)
		lowSpec.SpliceOptions = splice.Options{ReadWatermark: 1, WriteWatermark: 1, RefillBatch: 1}
		low = measureSpliceVariant(s, lowSpec.SpliceOptions)
	}
	b.ReportMetric(def, "default_KB/s")
	b.ReportMetric(low, "watermark1_KB/s")
}

// ---- Ablation C: write-side buffer sharing (§5.4) ----

func BenchmarkAblationSharing(b *testing.B) {
	var sharedCPU, copiedCPU float64
	for i := 0; i < b.N; i++ {
		_, intrShared := bench.MeasureSharingVariant(false)
		_, intrCopied := bench.MeasureSharingVariant(true)
		sharedCPU = intrShared.Milliseconds()
		copiedCPU = intrCopied.Milliseconds()
	}
	b.ReportMetric(sharedCPU, "shared_intr_ms")
	b.ReportMetric(copiedCPU, "copying_intr_ms")
}

// ---- Ablation D: file-size sweep (§6.2 robustness claim) ----

func BenchmarkAblationFileSize(b *testing.B) {
	var r1, r8 float64
	for i := 0; i < b.N; i++ {
		s1 := bench.DefaultSetup(bench.RZ58)
		s1.FileBytes = 1 << 20
		r1 = ratioSCPoverCP(s1)
		s8 := bench.DefaultSetup(bench.RZ58)
		r8 = ratioSCPoverCP(s8)
	}
	b.ReportMetric(r1, "ratio_1MB")
	b.ReportMetric(r8, "ratio_8MB")
}

// ---- Ablation E: spliced vs user-level UDP relay (§5.1) ----

func BenchmarkAblationSocket(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out, err := bench.RunSweep("socket", nil); err != nil || out == "" {
			b.Fatal(err)
		}
	}
}

// measureSpliceVariant measures splice throughput with explicit
// options on an 8MB RAM-disk copy.
func measureSpliceVariant(s bench.Setup, o splice.Options) float64 {
	res := bench.MeasureThroughputOpts(s, o)
	return res.ThroughputKBs()
}

func ratioSCPoverCP(s bench.Setup) float64 {
	scp := bench.MeasureThroughput(s, workload.CopySplice)
	cp := bench.MeasureThroughput(s, workload.CopyReadWrite)
	return scp.ThroughputKBs() / cp.ThroughputKBs()
}
